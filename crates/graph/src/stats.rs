//! Degree and clustering statistics.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree (2m/n for undirected simple graphs).
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes degree summary statistics. Returns zeros for an empty graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    if g.n() == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
        };
    }
    let mut degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    degrees.sort_unstable();
    let sum: usize = degrees.iter().sum();
    DegreeStats {
        min: degrees[0],
        max: *degrees.last().unwrap(),
        mean: sum as f64 / g.n() as f64,
        median: degrees[g.n() / 2],
    }
}

/// Degree histogram: `hist[d]` = number of nodes with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for u in g.nodes() {
        hist[g.degree(u)] += 1;
    }
    hist
}

/// Exact triangle count (each triangle counted once).
///
/// Uses the sorted-adjacency merge: for each edge `(u, v)` with `u < v`,
/// intersect the neighbor lists above `v`. O(Σ d(u)·d(v)) worst case — fine
/// at the dataset scales used here.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let mut count = 0u64;
    for u in g.nodes() {
        let nu = g.neighbors(u);
        for &v in nu.iter().filter(|&&v| v > u) {
            let nv = g.neighbors(v);
            count += sorted_intersection_above(nu, nv, v);
        }
    }
    count
}

/// Counts elements `> floor` present in both sorted slices.
fn sorted_intersection_above(a: &[NodeId], b: &[NodeId], floor: NodeId) -> u64 {
    let mut i = a.partition_point(|&x| x <= floor);
    let mut j = b.partition_point(|&x| x <= floor);
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Hill estimator of the degree-distribution tail exponent `γ`
/// (`P[deg ≥ d] ∝ d^{-(γ-1)}`), computed over the top `tail_fraction` of
/// degrees. Used to validate that the synthetic SNAP stand-ins carry the
/// heavy tail the real graphs have. Returns `None` when the tail is too
/// small to estimate (fewer than 8 samples above the cutoff).
pub fn degree_tail_exponent(g: &CsrGraph, tail_fraction: f64) -> Option<f64> {
    assert!(
        (0.0..=1.0).contains(&tail_fraction),
        "fraction outside [0, 1]"
    );
    let mut degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).filter(|&d| d > 0).collect();
    if degrees.is_empty() {
        return None;
    }
    degrees.sort_unstable_by(|a, b| b.cmp(a));
    let k = ((degrees.len() as f64 * tail_fraction) as usize).max(8);
    if k >= degrees.len() || degrees[k] == 0 {
        return None;
    }
    let x_min = degrees[k] as f64;
    let mean_log: f64 = degrees[..k]
        .iter()
        .map(|&d| (d as f64 / x_min).ln())
        .sum::<f64>()
        / k as f64;
    if mean_log <= 0.0 {
        return None;
    }
    // Hill: α̂ = 1 + 1/mean_log estimates the CCDF exponent (γ − 1); the
    // density exponent γ is one larger than the CCDF's.
    Some(1.0 + 1.0 / mean_log)
}

/// Global clustering coefficient: `3·triangles / open-or-closed wedges`.
/// Returns 0 when the graph has no wedges.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let wedges: u64 = g
        .nodes()
        .map(|u| {
            let d = g.degree(u) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        return 0.0;
    }
    3.0 * triangle_count(g) as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_star() {
        // Star: center 0 with 4 leaves.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn histogram_matches_degrees() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 4, 0, 0, 1]);
    }

    #[test]
    fn triangles_in_complete_graph() {
        // K4 has C(4,3) = 4 triangles; clustering = 1.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in (u + 1)..4 {
                edges.push((u, v));
            }
        }
        let g = CsrGraph::from_edges(4, &edges).unwrap();
        assert_eq!(triangle_count(&g), 4);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn triangle_plus_tail() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        assert_eq!(triangle_count(&g), 1);
        // Wedges: d=2,2,3,1 → 1 + 1 + 3 + 0 = 5; clustering = 3/5.
        assert!((global_clustering(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert_eq!(
            degree_stats(&g),
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0
            }
        );
        assert_eq!(triangle_count(&g), 0);
        assert_eq!(degree_tail_exponent(&g, 0.1), None);
    }

    #[test]
    fn tail_exponent_detects_heavy_tails() {
        // BA graphs have γ ≈ 3; a regular-ish graph has no power tail.
        let ba = crate::generators::barabasi_albert(5000, 4, 9).unwrap();
        let gamma = degree_tail_exponent(&ba, 0.1).expect("tail exists");
        assert!(
            (2.0..4.5).contains(&gamma),
            "BA tail exponent {gamma} outside plausible range"
        );
        // Uniform-degree graph: the "tail" is flat, mean_log ≈ 0 ⇒ either
        // None or a huge exponent.
        let ring = crate::generators::classic::cycle(500).unwrap();
        let flat = degree_tail_exponent(&ring, 0.1);
        assert!(flat.is_none() || flat.unwrap() > 10.0, "{flat:?}");
    }

    #[test]
    fn tail_exponent_small_graph_returns_none() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(degree_tail_exponent(&g, 0.5), None);
    }
}
