//! # rwd-graph
//!
//! Graph substrate for the random-walk domination library.
//!
//! This crate provides everything the algorithm layers need from a graph:
//!
//! * [`CsrGraph`] — a compact, immutable compressed-sparse-row adjacency
//!   structure with O(1) degree and neighbor-slice access (the representation
//!   every hot loop in the walk engine runs against),
//! * [`GraphBuilder`] — edge accumulation with self-loop / multi-edge policies,
//! * [`generators`] — synthetic graph models (Barabási–Albert, Erdős–Rényi,
//!   Chung–Lu power-law, Watts–Strogatz, random-regular, classic topologies,
//!   and the running example of the paper's Figure 1),
//! * [`edgelist`] — whitespace edge-list I/O with dense relabeling,
//! * [`traversal`] — BFS and connected components,
//! * [`stats`] — degree and clustering summaries,
//! * [`subgraph`] — induced subgraphs.
//!
//! The paper works with undirected, unweighted graphs; the structures here
//! also support directed graphs (walks follow out-arcs) and a weighted
//! variant lives in [`weighted`] to back the paper's "easily extended to
//! directed and weighted graphs" remark.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod csr;
pub mod edgelist;
pub mod error;
pub mod generators;
pub mod node;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod weighted;

pub use builder::{GraphBuilder, MultiEdgePolicy, SelfLoopPolicy};
pub use csr::{CsrGraph, GraphKind};
pub use error::GraphError;
pub use node::NodeId;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
