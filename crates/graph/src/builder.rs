//! Incremental graph construction with explicit policies.

use crate::csr::{CsrGraph, GraphKind};
use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// What to do with self-loops (`u == v`) during [`GraphBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelfLoopPolicy {
    /// Drop self-loops silently (default; the paper uses simple graphs).
    Remove,
    /// Keep self-loops. A kept undirected self-loop occupies one adjacency
    /// slot (a walk at `u` may step back onto `u`).
    Keep,
    /// Fail the build when a self-loop is present.
    Error,
}

/// What to do with duplicate edges during [`GraphBuilder::build`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultiEdgePolicy {
    /// Collapse duplicates to a single edge (default).
    Dedup,
    /// Keep duplicates (parallel edges bias walk transition probabilities,
    /// matching the weighted-graph view of multigraphs).
    Keep,
    /// Fail the build when a duplicate is present.
    Error,
}

/// Accumulates edges and produces a [`CsrGraph`].
///
/// ```
/// use rwd_graph::GraphBuilder;
/// let mut b = GraphBuilder::undirected().with_nodes(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 3);
/// let g = b.build().unwrap();
/// assert_eq!((g.n(), g.m()), (4, 3));
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    kind: GraphKind,
    self_loops: SelfLoopPolicy,
    multi_edges: MultiEdgePolicy,
    edges: Vec<(u32, u32)>,
    explicit_n: Option<usize>,
    max_seen: Option<u32>,
}

impl GraphBuilder {
    /// Starts an undirected builder with default policies
    /// (remove self-loops, dedup multi-edges).
    pub fn undirected() -> Self {
        Self::new(GraphKind::Undirected)
    }

    /// Starts a directed builder with default policies.
    pub fn directed() -> Self {
        Self::new(GraphKind::Directed)
    }

    fn new(kind: GraphKind) -> Self {
        GraphBuilder {
            kind,
            self_loops: SelfLoopPolicy::Remove,
            multi_edges: MultiEdgePolicy::Dedup,
            edges: Vec::new(),
            explicit_n: None,
            max_seen: None,
        }
    }

    /// Fixes the node count to `n`; edges must then stay within `[0, n)`.
    /// Without this, `n` is inferred as `max node id + 1`.
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.explicit_n = Some(n);
        self
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Sets the self-loop policy.
    pub fn self_loops(mut self, p: SelfLoopPolicy) -> Self {
        self.self_loops = p;
        self
    }

    /// Sets the multi-edge policy.
    pub fn multi_edges(mut self, p: MultiEdgePolicy) -> Self {
        self.multi_edges = p;
        self
    }

    /// Adds one edge (directed: the arc `u→v`).
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) {
        let hi = u.max(v);
        self.max_seen = Some(self.max_seen.map_or(hi, |m| m.max(hi)));
        self.edges.push((u, v));
    }

    /// Number of edges currently accumulated (before policy application).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Consumes the builder and produces the CSR graph.
    pub fn build(self) -> Result<CsrGraph> {
        let GraphBuilder {
            kind,
            self_loops,
            multi_edges,
            mut edges,
            explicit_n,
            max_seen,
        } = self;

        let inferred = max_seen.map_or(0, |m| m as usize + 1);
        let n = match explicit_n {
            Some(n) => {
                if inferred > n {
                    return Err(GraphError::InvalidInput(format!(
                        "edge references node {} but n = {n}",
                        inferred - 1
                    )));
                }
                n
            }
            None => inferred,
        };

        // Self-loop policy.
        match self_loops {
            SelfLoopPolicy::Remove => edges.retain(|&(u, v)| u != v),
            SelfLoopPolicy::Keep => {}
            SelfLoopPolicy::Error => {
                if let Some(&(u, _)) = edges.iter().find(|&&(u, v)| u == v) {
                    return Err(GraphError::InvalidInput(format!(
                        "self-loop at node {u} (policy = Error)"
                    )));
                }
            }
        }

        // Canonicalize undirected edges so duplicate detection sees (u,v) == (v,u).
        if kind == GraphKind::Undirected {
            for e in &mut edges {
                if e.0 > e.1 {
                    *e = (e.1, e.0);
                }
            }
        }

        match multi_edges {
            MultiEdgePolicy::Dedup => {
                edges.sort_unstable();
                edges.dedup();
            }
            MultiEdgePolicy::Keep => {}
            MultiEdgePolicy::Error => {
                let mut sorted = edges.clone();
                sorted.sort_unstable();
                if sorted.windows(2).any(|w| w[0] == w[1]) {
                    return Err(GraphError::InvalidInput(
                        "duplicate edge (policy = Error)".into(),
                    ));
                }
            }
        }

        let num_edges = edges.len();

        // Counting sort into CSR. Undirected edges emit both arcs; an
        // undirected self-loop (Keep policy) emits a single arc slot.
        let mut deg = vec![0usize; n];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            if kind == GraphKind::Undirected && u != v {
                deg[v as usize] += 1;
            }
        }

        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }

        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId(0); acc];
        for &(u, v) in &edges {
            targets[cursor[u as usize]] = NodeId(v);
            cursor[u as usize] += 1;
            if kind == GraphKind::Undirected && u != v {
                targets[cursor[v as usize]] = NodeId(u);
                cursor[v as usize] += 1;
            }
        }

        // Sort each adjacency range (stable ordering guarantees for
        // has_edge binary search and deterministic walks).
        for u in 0..n {
            targets[offsets[u]..offsets[u + 1]].sort_unstable();
        }

        Ok(CsrGraph::from_parts(kind, offsets, targets, num_edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_node_count() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(0, 5);
        let g = b.build().unwrap();
        assert_eq!(g.n(), 6);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn explicit_node_count_validates_range() {
        let mut b = GraphBuilder::undirected().with_nodes(3);
        b.add_edge(0, 5);
        assert!(b.build().is_err());
    }

    #[test]
    fn undirected_duplicates_collapse_across_orientations() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(2, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(NodeId(1)), 1);
        assert_eq!(g.degree(NodeId(2)), 1);
    }

    #[test]
    fn directed_keeps_orientations_distinct() {
        let mut b = GraphBuilder::directed();
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.kind(), GraphKind::Directed);
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1)]);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0)]);
    }

    #[test]
    fn self_loop_policies() {
        let mk = |p| {
            let mut b = GraphBuilder::undirected().self_loops(p);
            b.add_edge(0, 0);
            b.add_edge(0, 1);
            b.build()
        };
        let g = mk(SelfLoopPolicy::Remove).unwrap();
        assert_eq!(g.m(), 1);
        let g = mk(SelfLoopPolicy::Keep).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(NodeId(0)), 2); // loop occupies one slot
        assert!(mk(SelfLoopPolicy::Error).is_err());
    }

    #[test]
    fn multi_edge_policies() {
        let mk = |p| {
            let mut b = GraphBuilder::undirected().multi_edges(p);
            b.add_edge(0, 1);
            b.add_edge(0, 1);
            b.build()
        };
        assert_eq!(mk(MultiEdgePolicy::Dedup).unwrap().m(), 1);
        let multi = mk(MultiEdgePolicy::Keep).unwrap();
        assert_eq!(multi.m(), 2);
        assert_eq!(multi.degree(NodeId(0)), 2);
        assert!(mk(MultiEdgePolicy::Error).is_err());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::undirected().build().unwrap();
        assert_eq!(g.n(), 0);
        let g = GraphBuilder::undirected().with_nodes(7).build().unwrap();
        assert_eq!((g.n(), g.m()), (7, 0));
    }

    #[test]
    fn pending_edges_counts_raw_additions() {
        let mut b = GraphBuilder::undirected();
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.pending_edges(), 2);
    }
}
