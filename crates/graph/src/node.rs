//! Dense node identifiers.

use std::fmt;

/// A dense node identifier in `[0, n)`.
///
/// `NodeId` is a `u32` newtype: every graph in this workspace relabels its
/// vertices into a dense range so that per-node state can live in flat
/// vectors instead of hash maps (see the perf notes in `DESIGN.md`). A `u32`
/// supports graphs up to ~4.3 billion nodes, far beyond anything the paper
/// evaluates, while halving index memory versus `usize` on 64-bit targets.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn new(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize, "node index exceeds u32");
        NodeId(index as u32)
    }

    /// Returns the id as a `usize`, suitable for indexing flat arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(v: NodeId) -> Self {
        v.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let id = NodeId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7), NodeId::new(7));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(NodeId(3).to_string(), "3");
        assert_eq!(format!("{:?}", NodeId(3)), "n3");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
