//! Induced subgraphs.

use crate::csr::CsrGraph;
use crate::node::NodeId;

/// Builds the subgraph induced by `nodes` (duplicates ignored).
///
/// Returns the new graph plus `mapping[new] = old`. New ids follow the order
/// of first appearance in `nodes`, which keeps extraction deterministic.
pub fn induced(g: &CsrGraph, nodes: &[NodeId]) -> (CsrGraph, Vec<NodeId>) {
    let mut old_to_new = vec![u32::MAX; g.n()];
    let mut mapping = Vec::with_capacity(nodes.len());
    for &u in nodes {
        if old_to_new[u.index()] == u32::MAX {
            old_to_new[u.index()] = mapping.len() as u32;
            mapping.push(u);
        }
    }

    let mut b = crate::GraphBuilder::undirected().with_nodes(mapping.len());
    for &u in &mapping {
        let nu = old_to_new[u.index()];
        for &v in g.neighbors(u) {
            let nv = old_to_new[v.index()];
            // Emit each kept edge once (from its lower old endpoint).
            if nv != u32::MAX && u < v {
                b.add_edge(nu, nv);
            }
        }
    }
    (
        b.build().expect("induced subgraph edges are in range"),
        mapping,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_keeps_internal_edges_only() {
        // Square 0-1-2-3 plus diagonal 0-2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let (s, mapping) = induced(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.m(), 3); // 0-1, 1-2, 0-2
        assert_eq!(mapping, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn induced_respects_order_and_dedups() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
        let (s, mapping) = induced(&g, &[NodeId(2), NodeId(0), NodeId(2)]);
        assert_eq!(mapping, vec![NodeId(2), NodeId(0)]);
        assert_eq!(s.n(), 2);
        assert_eq!(s.m(), 0); // 0 and 2 not adjacent
    }

    #[test]
    fn induced_empty_selection() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]).unwrap();
        let (s, mapping) = induced(&g, &[]);
        assert_eq!(s.n(), 0);
        assert!(mapping.is_empty());
    }
}
