//! Weighted graph extension.
//!
//! The paper notes its techniques "can also be easily extended to directed
//! and weighted graphs": the only change is the transition probability
//! `p_uw = w(u,w) / strength(u)` in place of `1/deg(u)`. This module supplies
//! the weighted substrate; `rwd-walks` contains the matching walker and DP.

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// An immutable weighted graph in CSR form with two samplers per node: a
/// Walker/Vose **alias table** for O(1) neighbor draws (the random-walk hot
/// path) and cumulative weights for O(log d) binary-search draws (kept as a
/// cross-check oracle and for incremental use cases).
///
/// Undirected: each edge `{u, v, w}` is stored as both arcs with weight `w`.
#[derive(Clone, Debug)]
pub struct WeightedCsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
    /// `cumulative[offsets[u]..offsets[u+1]]` is the inclusive prefix sum of
    /// `weights` within `u`'s range; its last entry equals `strength(u)`.
    cumulative: Vec<f64>,
    /// Alias-table acceptance probabilities, aligned with `targets`:
    /// bucket `i` of node `u` keeps its own neighbor with probability
    /// `alias_prob[offsets[u] + i]`, else falls through to `alias[..]`.
    alias_prob: Vec<f64>,
    /// Alias-table fallback slots (indices *within* the node's range).
    alias: Vec<u32>,
    num_edges: usize,
}

/// Builds one node's Walker/Vose alias table in place.
///
/// `scaled` holds `w_i · d / total` on entry and is consumed as scratch.
/// Construction is deterministic (index stacks, no RNG), so the table — and
/// every sampler that consults it — is a pure function of the edge list.
fn fill_alias_table(scaled: &mut [f64], prob: &mut [f64], alias: &mut [u32]) {
    let d = scaled.len();
    let mut small: Vec<u32> = Vec::with_capacity(d);
    let mut large: Vec<u32> = Vec::with_capacity(d);
    for (i, &s) in scaled.iter().enumerate() {
        if s < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while !small.is_empty() && !large.is_empty() {
        let s = small.pop().expect("checked non-empty");
        let lg = *large.last().expect("checked non-empty");
        prob[s as usize] = scaled[s as usize];
        alias[s as usize] = lg;
        let rest = (scaled[lg as usize] + scaled[s as usize]) - 1.0;
        scaled[lg as usize] = rest;
        if rest < 1.0 {
            large.pop();
            small.push(lg);
        }
    }
    // Leftovers (either stack) keep their own bucket with probability 1;
    // their alias slot is never consulted but must stay in range.
    for &i in small.iter().chain(large.iter()) {
        prob[i as usize] = 1.0;
        alias[i as usize] = i;
    }
}

impl WeightedCsrGraph {
    /// Builds an undirected weighted simple graph over nodes `0..n`.
    ///
    /// Duplicate edges are rejected; weights must be strictly positive and
    /// finite; self-loops are rejected.
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32, f64)]) -> Result<Self> {
        let mut arcs: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::InvalidInput(format!(
                    "edge ({u}, {v}) out of range (n = {n})"
                )));
            }
            if u == v {
                return Err(GraphError::InvalidInput(format!("self-loop at {u}")));
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::InvalidInput(format!(
                    "edge ({u}, {v}) has non-positive weight {w}"
                )));
            }
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        arcs.sort_unstable_by_key(|a| (a.0, a.1));
        if arcs
            .windows(2)
            .any(|p| (p[0].0, p[0].1) == (p[1].0, p[1].1))
        {
            return Err(GraphError::InvalidInput("duplicate weighted edge".into()));
        }

        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = arcs.iter().map(|&(_, v, _)| NodeId(v)).collect();
        let weights: Vec<f64> = arcs.iter().map(|&(_, _, w)| w).collect();

        let mut cumulative = vec![0.0; weights.len()];
        for u in 0..n {
            let mut acc = 0.0;
            for i in offsets[u]..offsets[u + 1] {
                acc += weights[i];
                cumulative[i] = acc;
            }
        }

        let mut alias_prob = vec![1.0f64; weights.len()];
        let mut alias = vec![0u32; weights.len()];
        let mut scaled: Vec<f64> = Vec::new();
        for u in 0..n {
            let (lo, hi) = (offsets[u], offsets[u + 1]);
            if lo == hi {
                continue;
            }
            let d = (hi - lo) as f64;
            let total = cumulative[hi - 1];
            scaled.clear();
            scaled.extend(weights[lo..hi].iter().map(|&w| w * d / total));
            fill_alias_table(&mut scaled, &mut alias_prob[lo..hi], &mut alias[lo..hi]);
        }

        Ok(WeightedCsrGraph {
            offsets,
            targets,
            weights,
            cumulative,
            alias_prob,
            alias,
            num_edges: edges.len(),
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.num_edges
    }

    /// Degree (number of incident edges) of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Total incident weight of `u` (the random-walk normalizer).
    #[inline]
    pub fn strength(&self, u: NodeId) -> f64 {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        if lo == hi {
            0.0
        } else {
            self.cumulative[hi - 1]
        }
    }

    /// Neighbor/weight pairs of `u`.
    pub fn neighbors(&self, u: NodeId) -> impl ExactSizeIterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Samples a neighbor of `u` with probability proportional to edge
    /// weight, given a uniform draw `x ∈ [0, 1)`, by binary search over the
    /// cumulative weights — O(log d). Returns `None` for isolated nodes.
    ///
    /// The random-walk hot path uses [`WeightedCsrGraph::pick_neighbor_alias`]
    /// instead; this form is kept as the independent oracle the property
    /// tests compare the alias table against.
    pub fn pick_neighbor(&self, u: NodeId, x: f64) -> Option<NodeId> {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        if lo == hi {
            return None;
        }
        let total = self.cumulative[hi - 1];
        let needle = x * total;
        let range = &self.cumulative[lo..hi];
        let idx = range.partition_point(|&c| c <= needle).min(range.len() - 1);
        Some(self.targets[lo + idx])
    }

    /// Samples a neighbor of `u` with probability proportional to edge
    /// weight in **O(1)** via the precomputed Walker/Vose alias table, given
    /// a uniform draw `x ∈ [0, 1)`. Returns `None` for isolated nodes.
    ///
    /// The single draw is split into a bucket index (high part) and an
    /// acceptance fraction (low part), so one `f64` drives both decisions —
    /// the same draw count per step as the binary-search sampler.
    #[inline]
    pub fn pick_neighbor_alias(&self, u: NodeId, x: f64) -> Option<NodeId> {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        let d = hi - lo;
        if d == 0 {
            return None;
        }
        let scaled = x * d as f64;
        let mut bucket = scaled as usize;
        if bucket >= d {
            bucket = d - 1; // x is < 1.0, but guard fp edge cases
        }
        let frac = scaled - bucket as f64;
        let slot = if frac < self.alias_prob[lo + bucket] {
            bucket
        } else {
            self.alias[lo + bucket] as usize
        };
        Some(self.targets[lo + slot])
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }

    /// True if `{u, v}` is an edge. O(log deg(u)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        self.targets[lo..hi].binary_search(&v).is_ok()
    }

    /// Applies a batch of weighted edge edits, producing the next-epoch
    /// graph and the sorted list of **touched** nodes (endpoints of any
    /// applied edit). Deletions are applied before insertions, so listing an
    /// edge in both acts as a **weight update**.
    ///
    /// Samplers are patched, not rebuilt: the cumulative-weight prefix sums
    /// and the Walker/Vose alias table are recomputed **only for touched
    /// nodes**; untouched rows are copied verbatim (alias fallback slots are
    /// row-relative, so they stay valid when offsets shift). The result is
    /// bit-identical to [`WeightedCsrGraph::from_weighted_edges`] on the
    /// final edge list — alias construction is deterministic per row.
    ///
    /// Validation matches the constructor: weights must be positive and
    /// finite, no self-loops, deletions must exist, insertions must not
    /// (unless the batch also deletes them), no duplicates within a list.
    pub fn with_edits(
        &self,
        insertions: &[(u32, u32, f64)],
        deletions: &[(u32, u32)],
    ) -> Result<(WeightedCsrGraph, Vec<NodeId>)> {
        let n = self.n();
        let check = |u: u32, v: u32, what: &str| -> Result<()> {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::InvalidInput(format!(
                    "{what} ({u}, {v}) out of range (n = {n})"
                )));
            }
            if u == v {
                return Err(GraphError::InvalidInput(format!(
                    "{what} ({u}, {v}) is a self-loop"
                )));
            }
            Ok(())
        };
        let mut ins: Vec<(u32, u32, f64)> = Vec::with_capacity(insertions.len());
        for &(u, v, w) in insertions {
            check(u, v, "insertion")?;
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::InvalidInput(format!(
                    "insertion ({u}, {v}) has non-positive weight {w}"
                )));
            }
            ins.push(if u > v { (v, u, w) } else { (u, v, w) });
        }
        let mut del: Vec<(u32, u32)> = Vec::with_capacity(deletions.len());
        for &(u, v) in deletions {
            check(u, v, "deletion")?;
            del.push(if u > v { (v, u) } else { (u, v) });
        }
        ins.sort_unstable_by_key(|a| (a.0, a.1));
        del.sort_unstable();
        if let Some(w) = ins
            .windows(2)
            .find(|w| (w[0].0, w[0].1) == (w[1].0, w[1].1))
        {
            return Err(GraphError::InvalidInput(format!(
                "duplicate insertion ({}, {})",
                w[0].0, w[0].1
            )));
        }
        if let Some(w) = del.windows(2).find(|w| w[0] == w[1]) {
            return Err(GraphError::InvalidInput(format!(
                "duplicate deletion ({}, {})",
                w[0].0, w[0].1
            )));
        }
        for &(u, v) in &del {
            if !self.has_edge(NodeId(u), NodeId(v)) {
                return Err(GraphError::InvalidInput(format!(
                    "deletion ({u}, {v}) does not exist"
                )));
            }
        }
        for &(u, v, _) in &ins {
            let replaced = del.binary_search(&(u, v)).is_ok();
            if !replaced && self.has_edge(NodeId(u), NodeId(v)) {
                return Err(GraphError::InvalidInput(format!(
                    "insertion ({u}, {v}) already exists"
                )));
            }
        }

        // Expand edges to per-row arcs.
        let mut add_arcs: Vec<(u32, u32, f64)> = Vec::with_capacity(ins.len() * 2);
        for &(u, v, w) in &ins {
            add_arcs.push((u, v, w));
            add_arcs.push((v, u, w));
        }
        add_arcs.sort_unstable_by_key(|a| (a.0, a.1));
        let mut del_arcs: Vec<(u32, u32)> = Vec::with_capacity(del.len() * 2);
        for &(u, v) in &del {
            del_arcs.push((u, v));
            del_arcs.push((v, u));
        }
        del_arcs.sort_unstable();

        let mut touched: Vec<NodeId> = add_arcs
            .iter()
            .map(|&(u, _, _)| NodeId(u))
            .chain(del_arcs.iter().map(|&(u, _)| NodeId(u)))
            .collect();
        touched.sort_unstable();
        touched.dedup();

        let new_slots = self.targets.len() + add_arcs.len() - del_arcs.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets: Vec<NodeId> = Vec::with_capacity(new_slots);
        let mut weights: Vec<f64> = Vec::with_capacity(new_slots);
        let mut cumulative: Vec<f64> = Vec::with_capacity(new_slots);
        let mut alias_prob: Vec<f64> = Vec::with_capacity(new_slots);
        let mut alias: Vec<u32> = Vec::with_capacity(new_slots);
        let mut scaled: Vec<f64> = Vec::new();

        let mut ti = touched.iter().peekable();
        for u in 0..n as u32 {
            let (lo, hi) = (self.offsets[u as usize], self.offsets[u as usize + 1]);
            let is_touched = ti.peek() == Some(&&NodeId(u));
            if is_touched {
                ti.next();
            }
            if !is_touched {
                targets.extend_from_slice(&self.targets[lo..hi]);
                weights.extend_from_slice(&self.weights[lo..hi]);
                cumulative.extend_from_slice(&self.cumulative[lo..hi]);
                alias_prob.extend_from_slice(&self.alias_prob[lo..hi]);
                alias.extend_from_slice(&self.alias[lo..hi]);
                offsets.push(targets.len());
                continue;
            }
            // Merge this row: old minus dels, plus adds, sorted by target.
            let adds = {
                let a = add_arcs.partition_point(|&(a, _, _)| a < u);
                let b = add_arcs.partition_point(|&(a, _, _)| a <= u);
                &add_arcs[a..b]
            };
            let dels = {
                let a = del_arcs.partition_point(|&(a, _)| a < u);
                let b = del_arcs.partition_point(|&(a, _)| a <= u);
                &del_arcs[a..b]
            };
            let row_lo = targets.len();
            let mut di = 0;
            let mut ai = 0;
            for k in lo..hi {
                let w = self.targets[k];
                if di < dels.len() && dels[di].1 == w.raw() {
                    di += 1;
                    continue;
                }
                while ai < adds.len() && adds[ai].1 < w.raw() {
                    targets.push(NodeId(adds[ai].1));
                    weights.push(adds[ai].2);
                    ai += 1;
                }
                targets.push(w);
                weights.push(self.weights[k]);
            }
            for &(_, v, w) in &adds[ai..] {
                targets.push(NodeId(v));
                weights.push(w);
            }
            // Rebuild this row's samplers from scratch (deterministic, so
            // identical to a full constructor run on the same row).
            let mut acc = 0.0;
            for &w in &weights[row_lo..] {
                acc += w;
                cumulative.push(acc);
            }
            let d = targets.len() - row_lo;
            alias_prob.resize(row_lo + d, 1.0);
            alias.resize(row_lo + d, 0);
            if d > 0 {
                let total = cumulative[row_lo + d - 1];
                scaled.clear();
                scaled.extend(weights[row_lo..].iter().map(|&w| w * d as f64 / total));
                fill_alias_table(&mut scaled, &mut alias_prob[row_lo..], &mut alias[row_lo..]);
            }
            offsets.push(targets.len());
        }

        Ok((
            WeightedCsrGraph {
                offsets,
                targets,
                weights,
                cumulative,
                alias_prob,
                alias,
                num_edges: self.num_edges + ins.len() - del.len(),
            },
            touched,
        ))
    }
}

/// The deterministic `(seed, u, v) → weight` mix behind [`weighted_twin`]:
/// splitmix64-style finalizer into `(0, 2]`. Exported so other weight
/// sources (e.g. temporal-trace insertions) can share one weight universe
/// per seed bit-for-bit instead of hand-syncing a copy of the formula.
pub fn twin_weight(seed: u64, u: u32, v: u32) -> f64 {
    let mut z = seed ^ (((u as u64) << 32) | v as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let w = ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0;
    w.max(1e-9)
}

/// Deterministic weighted twin of an unweighted graph: the same edge set
/// with each weight drawn by [`twin_weight`] — the standard fixture for
/// benchmarking and testing the weighted pipeline against a structurally
/// identical unweighted one.
pub fn weighted_twin(g: &crate::CsrGraph, seed: u64) -> Result<WeightedCsrGraph> {
    let edges: Vec<(u32, u32, f64)> = g
        .edges()
        .map(|(u, v)| (u.raw(), v.raw(), twin_weight(seed, u.raw(), v.raw())))
        .collect();
    WeightedCsrGraph::from_weighted_edges(g.n(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wg() -> WeightedCsrGraph {
        WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn strength_and_degree() {
        let g = wg();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!((g.strength(NodeId(0)) - 4.0).abs() < 1e-12);
        assert!((g.strength(NodeId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn pick_neighbor_respects_weights() {
        let g = wg();
        // Node 0 neighbors: 1 (w=1), 2 (w=3); cumulative [1, 4].
        assert_eq!(g.pick_neighbor(NodeId(0), 0.0), Some(NodeId(1)));
        assert_eq!(g.pick_neighbor(NodeId(0), 0.24), Some(NodeId(1)));
        assert_eq!(g.pick_neighbor(NodeId(0), 0.26), Some(NodeId(2)));
        assert_eq!(g.pick_neighbor(NodeId(0), 0.999), Some(NodeId(2)));
    }

    #[test]
    fn isolated_node_has_no_neighbor() {
        let g = WeightedCsrGraph::from_weighted_edges(2, &[]).unwrap();
        assert_eq!(g.pick_neighbor(NodeId(0), 0.5), None);
        assert_eq!(g.pick_neighbor_alias(NodeId(0), 0.5), None);
        assert_eq!(g.strength(NodeId(0)), 0.0);
    }

    /// Reconstructs each neighbor's selection probability from the alias
    /// table analytically: P(j) = Σ_i [prob_i·(i=j) + (1−prob_i)·(alias_i=j)] / d.
    fn alias_distribution(g: &WeightedCsrGraph, u: NodeId) -> Vec<f64> {
        let d = g.degree(u);
        let mut p = vec![0.0f64; d];
        let lo = g.offsets[u.index()];
        for i in 0..d {
            p[i] += g.alias_prob[lo + i] / d as f64;
            p[g.alias[lo + i] as usize] += (1.0 - g.alias_prob[lo + i]) / d as f64;
        }
        p
    }

    #[test]
    fn alias_table_encodes_exact_weights() {
        let g = WeightedCsrGraph::from_weighted_edges(
            5,
            &[
                (0, 1, 0.25),
                (0, 2, 3.5),
                (0, 3, 1.0),
                (0, 4, 7.25),
                (1, 2, 2.0),
            ],
        )
        .unwrap();
        for u in g.nodes() {
            let p = alias_distribution(&g, u);
            let total = g.strength(u);
            for (i, (_, w)) in g.neighbors(u).enumerate() {
                assert!(
                    (p[i] - w / total).abs() < 1e-12,
                    "node {u} slot {i}: alias {} vs exact {}",
                    p[i],
                    w / total
                );
            }
        }
    }

    #[test]
    fn alias_sampler_respects_extreme_weights() {
        // 1e-12 vs 1e12: the alias draw at any plausible x picks the heavy
        // neighbor; only an acceptance fraction below ~2e-24 (i.e. x within
        // 1e-24 of a bucket boundary) could pick 1.
        let g = WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1e-12), (0, 2, 1e12)]).unwrap();
        for x in [1e-6, 0.1, 0.37, 0.5, 0.73, 0.999_999] {
            assert_eq!(
                g.pick_neighbor_alias(NodeId(0), x),
                Some(NodeId(2)),
                "x={x}"
            );
        }
    }

    #[test]
    fn alias_sampler_covers_all_neighbors_of_uniform_node() {
        // Equal weights: bucket i keeps itself (prob 1), so x ∈ [i/d, (i+1)/d)
        // maps to neighbor i exactly.
        let g = WeightedCsrGraph::from_weighted_edges(4, &[(0, 1, 2.0), (0, 2, 2.0), (0, 3, 2.0)])
            .unwrap();
        assert_eq!(g.pick_neighbor_alias(NodeId(0), 0.1), Some(NodeId(1)));
        assert_eq!(g.pick_neighbor_alias(NodeId(0), 0.5), Some(NodeId(2)));
        assert_eq!(g.pick_neighbor_alias(NodeId(0), 0.9), Some(NodeId(3)));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 0, 1.0)]).is_err());
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 1, 0.0)]).is_err());
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 1, f64::NAN)]).is_err());
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 3, 1.0)]).is_err());
        assert!(
            WeightedCsrGraph::from_weighted_edges(2, &[(0, 1, 1.0), (1, 0, 2.0)]).is_err(),
            "duplicate across orientations must be rejected"
        );
    }

    /// Asserts two weighted graphs are bit-identical in every column —
    /// the contract `with_edits` promises against a from-scratch build.
    fn assert_same(a: &WeightedCsrGraph, b: &WeightedCsrGraph) {
        assert_eq!(a.offsets, b.offsets);
        assert_eq!(a.targets, b.targets);
        assert_eq!(
            a.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            b.weights.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            a.cumulative.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            b.cumulative.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            a.alias_prob.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            b.alias_prob.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(a.alias, b.alias);
        assert_eq!(a.num_edges, b.num_edges);
    }

    #[test]
    fn with_edits_matches_from_scratch_build() {
        let g = WeightedCsrGraph::from_weighted_edges(
            5,
            &[(0, 1, 1.0), (0, 2, 3.0), (1, 2, 0.5), (3, 4, 2.0)],
        )
        .unwrap();
        let (g2, touched) = g
            .with_edits(&[(2, 4, 1.5), (0, 3, 0.25)], &[(1, 2)])
            .unwrap();
        assert_eq!(
            touched,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        let fresh = WeightedCsrGraph::from_weighted_edges(
            5,
            &[
                (0, 1, 1.0),
                (0, 2, 3.0),
                (3, 4, 2.0),
                (2, 4, 1.5),
                (0, 3, 0.25),
            ],
        )
        .unwrap();
        assert_same(&g2, &fresh);
    }

    #[test]
    fn with_edits_weight_update_via_delete_insert() {
        let g = wg();
        let (g2, touched) = g.with_edits(&[(0, 1, 5.0)], &[(1, 0)]).unwrap();
        assert_eq!(touched, vec![NodeId(0), NodeId(1)]);
        assert_eq!(g2.m(), 2);
        let fresh = WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 5.0), (0, 2, 3.0)]).unwrap();
        assert_same(&g2, &fresh);
    }

    #[test]
    fn with_edits_untouched_rows_copied_verbatim() {
        let g = WeightedCsrGraph::from_weighted_edges(6, &[(0, 1, 1.0), (2, 3, 0.7), (4, 5, 2.0)])
            .unwrap();
        let (g2, touched) = g.with_edits(&[], &[(4, 5)]).unwrap();
        assert_eq!(touched, vec![NodeId(4), NodeId(5)]);
        let fresh = WeightedCsrGraph::from_weighted_edges(6, &[(0, 1, 1.0), (2, 3, 0.7)]).unwrap();
        assert_same(&g2, &fresh);
        assert_eq!(g2.degree(NodeId(4)), 0);
        assert_eq!(g2.pick_neighbor_alias(NodeId(4), 0.5), None);
    }

    #[test]
    fn with_edits_rejects_bad_batches() {
        let g = wg();
        assert!(g.with_edits(&[(0, 0, 1.0)], &[]).is_err(), "self-loop");
        assert!(g.with_edits(&[(0, 9, 1.0)], &[]).is_err(), "out of range");
        assert!(g.with_edits(&[(0, 1, 1.0)], &[]).is_err(), "exists");
        assert!(g.with_edits(&[(1, 2, 0.0)], &[]).is_err(), "zero weight");
        assert!(g.with_edits(&[(1, 2, f64::NAN)], &[]).is_err(), "nan");
        assert!(g.with_edits(&[], &[(1, 2)]).is_err(), "missing edge");
        assert!(
            g.with_edits(&[(1, 2, 1.0), (2, 1, 2.0)], &[]).is_err(),
            "duplicate insertion across orientations"
        );
        assert!(
            g.with_edits(&[], &[(0, 1), (1, 0)]).is_err(),
            "duplicate deletion across orientations"
        );
    }

    #[test]
    fn neighbors_iterate_with_weights() {
        let g = wg();
        let nbrs: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(nbrs, vec![(NodeId(1), 1.0), (NodeId(2), 3.0)]);
    }
}
