//! Weighted graph extension.
//!
//! The paper notes its techniques "can also be easily extended to directed
//! and weighted graphs": the only change is the transition probability
//! `p_uw = w(u,w) / strength(u)` in place of `1/deg(u)`. This module supplies
//! the weighted substrate; `rwd-walks` contains the matching walker and DP.

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// An immutable weighted graph in CSR form with per-node cumulative weights
/// for O(log d) neighbor sampling.
///
/// Undirected: each edge `{u, v, w}` is stored as both arcs with weight `w`.
#[derive(Clone, Debug)]
pub struct WeightedCsrGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    weights: Vec<f64>,
    /// `cumulative[offsets[u]..offsets[u+1]]` is the inclusive prefix sum of
    /// `weights` within `u`'s range; its last entry equals `strength(u)`.
    cumulative: Vec<f64>,
    num_edges: usize,
}

impl WeightedCsrGraph {
    /// Builds an undirected weighted simple graph over nodes `0..n`.
    ///
    /// Duplicate edges are rejected; weights must be strictly positive and
    /// finite; self-loops are rejected.
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32, f64)]) -> Result<Self> {
        let mut arcs: Vec<(u32, u32, f64)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::InvalidInput(format!(
                    "edge ({u}, {v}) out of range (n = {n})"
                )));
            }
            if u == v {
                return Err(GraphError::InvalidInput(format!("self-loop at {u}")));
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::InvalidInput(format!(
                    "edge ({u}, {v}) has non-positive weight {w}"
                )));
            }
            arcs.push((u, v, w));
            arcs.push((v, u, w));
        }
        arcs.sort_unstable_by_key(|a| (a.0, a.1));
        if arcs
            .windows(2)
            .any(|p| (p[0].0, p[0].1) == (p[1].0, p[1].1))
        {
            return Err(GraphError::InvalidInput("duplicate weighted edge".into()));
        }

        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &arcs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = arcs.iter().map(|&(_, v, _)| NodeId(v)).collect();
        let weights: Vec<f64> = arcs.iter().map(|&(_, _, w)| w).collect();

        let mut cumulative = vec![0.0; weights.len()];
        for u in 0..n {
            let mut acc = 0.0;
            for i in offsets[u]..offsets[u + 1] {
                acc += weights[i];
                cumulative[i] = acc;
            }
        }

        Ok(WeightedCsrGraph {
            offsets,
            targets,
            weights,
            cumulative,
            num_edges: edges.len(),
        })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.num_edges
    }

    /// Degree (number of incident edges) of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u.index() + 1] - self.offsets[u.index()]
    }

    /// Total incident weight of `u` (the random-walk normalizer).
    #[inline]
    pub fn strength(&self, u: NodeId) -> f64 {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        if lo == hi {
            0.0
        } else {
            self.cumulative[hi - 1]
        }
    }

    /// Neighbor/weight pairs of `u`.
    pub fn neighbors(&self, u: NodeId) -> impl ExactSizeIterator<Item = (NodeId, f64)> + '_ {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Samples a neighbor of `u` with probability proportional to edge
    /// weight, given a uniform draw `x ∈ [0, 1)`. Returns `None` for
    /// isolated nodes.
    pub fn pick_neighbor(&self, u: NodeId, x: f64) -> Option<NodeId> {
        let (lo, hi) = (self.offsets[u.index()], self.offsets[u.index() + 1]);
        if lo == hi {
            return None;
        }
        let total = self.cumulative[hi - 1];
        let needle = x * total;
        let range = &self.cumulative[lo..hi];
        let idx = range.partition_point(|&c| c <= needle).min(range.len() - 1);
        Some(self.targets[lo + idx])
    }

    /// Iterator over node ids.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wg() -> WeightedCsrGraph {
        WeightedCsrGraph::from_weighted_edges(3, &[(0, 1, 1.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn strength_and_degree() {
        let g = wg();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!((g.strength(NodeId(0)) - 4.0).abs() < 1e-12);
        assert!((g.strength(NodeId(1)) - 1.0).abs() < 1e-12);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn pick_neighbor_respects_weights() {
        let g = wg();
        // Node 0 neighbors: 1 (w=1), 2 (w=3); cumulative [1, 4].
        assert_eq!(g.pick_neighbor(NodeId(0), 0.0), Some(NodeId(1)));
        assert_eq!(g.pick_neighbor(NodeId(0), 0.24), Some(NodeId(1)));
        assert_eq!(g.pick_neighbor(NodeId(0), 0.26), Some(NodeId(2)));
        assert_eq!(g.pick_neighbor(NodeId(0), 0.999), Some(NodeId(2)));
    }

    #[test]
    fn isolated_node_has_no_neighbor() {
        let g = WeightedCsrGraph::from_weighted_edges(2, &[]).unwrap();
        assert_eq!(g.pick_neighbor(NodeId(0), 0.5), None);
        assert_eq!(g.strength(NodeId(0)), 0.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 0, 1.0)]).is_err());
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 1, 0.0)]).is_err());
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 1, f64::NAN)]).is_err());
        assert!(WeightedCsrGraph::from_weighted_edges(2, &[(0, 3, 1.0)]).is_err());
        assert!(
            WeightedCsrGraph::from_weighted_edges(2, &[(0, 1, 1.0), (1, 0, 2.0)]).is_err(),
            "duplicate across orientations must be rejected"
        );
    }

    #[test]
    fn neighbors_iterate_with_weights() {
        let g = wg();
        let nbrs: Vec<_> = g.neighbors(NodeId(0)).collect();
        assert_eq!(nbrs, vec![(NodeId(1), 1.0), (NodeId(2), 3.0)]);
    }
}
