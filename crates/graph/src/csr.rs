//! Compressed-sparse-row graph storage.

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// Whether arcs are stored for one direction or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Every edge `{u, v}` is stored as the two arcs `u→v` and `v→u`.
    Undirected,
    /// Arcs are stored exactly as given.
    Directed,
}

/// An immutable graph in compressed-sparse-row form.
///
/// All algorithm layers in this workspace run against this structure: the
/// random-walk engine needs nothing more than *degree* and a *neighbor
/// slice*, both O(1) here. Neighbor lists are sorted, which additionally
/// gives O(log d) [`CsrGraph::has_edge`] checks and linear-time sorted-list
/// intersections for triangle counting.
///
/// Construct via [`crate::GraphBuilder`], [`CsrGraph::from_edges`], the
/// [`crate::generators`], or [`crate::edgelist`].
#[derive(Clone, Debug)]
pub struct CsrGraph {
    kind: GraphKind,
    /// `offsets[u]..offsets[u+1]` delimits `targets` entries of node `u`.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted adjacency targets.
    targets: Vec<NodeId>,
    /// Logical edge count: undirected edges or directed arcs.
    num_edges: usize,
}

impl CsrGraph {
    /// Builds an undirected simple graph (self-loops and duplicate edges
    /// removed) over nodes `0..n` from an edge list.
    ///
    /// This is the convenience constructor used throughout tests and
    /// examples; use [`crate::GraphBuilder`] for policy control.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self> {
        let mut b = crate::GraphBuilder::undirected().with_nodes(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Internal constructor from already-validated CSR parts.
    ///
    /// `targets` within each node range must be sorted. `num_edges` is the
    /// logical count (arcs for directed graphs, edges for undirected).
    pub(crate) fn from_parts(
        kind: GraphKind,
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        num_edges: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        CsrGraph {
            kind,
            offsets,
            targets,
            num_edges,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges `m` (undirected edges, or directed arcs).
    #[inline]
    pub fn m(&self) -> usize {
        self.num_edges
    }

    /// Storage directionality.
    #[inline]
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Out-degree of `u` (== degree for undirected graphs).
    ///
    /// # Panics
    /// Panics if `u` is out of range (debug builds; release indexes).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let i = u.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Sorted slice of `u`'s (out-)neighbors.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let i = u.index();
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }

    /// True if the arc `u→v` exists (for undirected graphs this is edge
    /// membership). O(log deg(u)) via binary search on the sorted slice.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over logical edges.
    ///
    /// Undirected: each edge yielded once with `u <= v`. Directed: every arc.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| self.kind == GraphKind::Directed || u <= v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of all stored arc slots (2m for undirected simple graphs).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n() == 0
    }

    /// Returns the maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Validates an externally supplied node id against this graph.
    pub fn check_node(&self, u: NodeId) -> Result<()> {
        if u.index() < self.n() {
            Ok(())
        } else {
            Err(GraphError::InvalidInput(format!(
                "node {u} out of range (n = {})",
                self.n()
            )))
        }
    }

    /// Applies a batch of edge edits, producing the next-epoch graph and the
    /// sorted list of **touched** nodes — the nodes whose adjacency list
    /// changed (both endpoints for undirected edits; the source endpoint for
    /// directed arcs, since walks only consult out-neighbors).
    ///
    /// Deletions are applied before insertions, so an edge present in both
    /// lists is a delete-then-reinsert (a no-op for the edge set, but its
    /// endpoints still count as touched). Every deletion must name an
    /// existing edge and every insertion a non-existing one (after the
    /// batch's deletions); self-loops, out-of-range endpoints and duplicate
    /// entries within either list are rejected. The graph must be simple
    /// (the default build policies) for the existence checks to be
    /// meaningful.
    ///
    /// Cost: `O(n + m + |batch| log |batch|)` — the CSR arrays are copied
    /// (they are immutable, and offsets shift), but only touched rows are
    /// re-merged; untouched rows are copied verbatim. The expensive
    /// downstream work (walk resampling) is what the touched set keeps
    /// small.
    pub fn with_edits(
        &self,
        insertions: &[(u32, u32)],
        deletions: &[(u32, u32)],
    ) -> Result<(CsrGraph, Vec<NodeId>)> {
        let n = self.n();
        let canon = |u: u32, v: u32, what: &str| -> Result<(u32, u32)> {
            if u as usize >= n || v as usize >= n {
                return Err(GraphError::InvalidInput(format!(
                    "{what} ({u}, {v}) out of range (n = {n})"
                )));
            }
            if u == v {
                return Err(GraphError::InvalidInput(format!(
                    "{what} ({u}, {v}) is a self-loop"
                )));
            }
            if self.kind == GraphKind::Undirected && u > v {
                Ok((v, u))
            } else {
                Ok((u, v))
            }
        };
        let mut ins: Vec<(u32, u32)> = insertions
            .iter()
            .map(|&(u, v)| canon(u, v, "insertion"))
            .collect::<Result<_>>()?;
        let mut del: Vec<(u32, u32)> = deletions
            .iter()
            .map(|&(u, v)| canon(u, v, "deletion"))
            .collect::<Result<_>>()?;
        ins.sort_unstable();
        del.sort_unstable();
        for (name, list) in [("insertion", &ins), ("deletion", &del)] {
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                return Err(GraphError::InvalidInput(format!(
                    "duplicate {name} ({}, {})",
                    w[0].0, w[0].1
                )));
            }
        }
        for &(u, v) in &del {
            if !self.has_edge(NodeId(u), NodeId(v)) {
                return Err(GraphError::InvalidInput(format!(
                    "deletion ({u}, {v}) does not exist"
                )));
            }
        }
        for &(u, v) in &ins {
            let replaced = del.binary_search(&(u, v)).is_ok();
            if !replaced && self.has_edge(NodeId(u), NodeId(v)) {
                return Err(GraphError::InvalidInput(format!(
                    "insertion ({u}, {v}) already exists"
                )));
            }
        }

        // Expand edges to arcs keyed by the node whose row they live in.
        let arcs_of = |list: &[(u32, u32)]| -> Vec<(u32, u32)> {
            let mut arcs: Vec<(u32, u32)> = Vec::with_capacity(list.len() * 2);
            for &(u, v) in list {
                arcs.push((u, v));
                if self.kind == GraphKind::Undirected {
                    arcs.push((v, u));
                }
            }
            arcs.sort_unstable();
            arcs
        };
        let add_arcs = arcs_of(&ins);
        let del_arcs = arcs_of(&del);

        let mut touched: Vec<NodeId> = add_arcs
            .iter()
            .chain(del_arcs.iter())
            .map(|&(u, _)| NodeId(u))
            .collect();
        touched.sort_unstable();
        touched.dedup();

        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets: Vec<NodeId> =
            Vec::with_capacity(self.targets.len() + add_arcs.len() - del_arcs.len());
        let row_of = |arcs: &[(u32, u32)], u: u32| -> std::ops::Range<usize> {
            let lo = arcs.partition_point(|&(a, _)| a < u);
            let hi = arcs.partition_point(|&(a, _)| a <= u);
            lo..hi
        };
        for u in 0..n as u32 {
            let old = self.neighbors(NodeId(u));
            let adds = &add_arcs[row_of(&add_arcs, u)];
            let dels = &del_arcs[row_of(&del_arcs, u)];
            if adds.is_empty() && dels.is_empty() {
                targets.extend_from_slice(old);
            } else {
                // Merge: old minus dels, interleaved with adds, all sorted.
                let mut di = 0;
                let mut ai = 0;
                for &w in old {
                    if di < dels.len() && dels[di].1 == w.raw() {
                        di += 1;
                        continue;
                    }
                    while ai < adds.len() && adds[ai].1 < w.raw() {
                        targets.push(NodeId(adds[ai].1));
                        ai += 1;
                    }
                    targets.push(w);
                }
                for &(_, w) in &adds[ai..] {
                    targets.push(NodeId(w));
                }
            }
            offsets.push(targets.len());
        }
        let num_edges = self.num_edges + ins.len() - del.len();
        Ok((
            CsrGraph::from_parts(self.kind, offsets, targets, num_edges),
            touched,
        ))
    }

    /// Raw offsets (mainly for serialization and tests).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw target array (mainly for serialization and tests).
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.arc_count(), 6);
        assert_eq!(g.kind(), GraphKind::Undirected);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (0, 2), (0, 1), (0, 3)]).unwrap();
        assert_eq!(
            g.neighbors(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_yields_each_once_undirected() {
        let g = triangle();
        let mut es: Vec<_> = g.edges().collect();
        es.sort();
        assert_eq!(
            es,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2))
            ]
        );
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId(2)), 0);
        assert_eq!(g.degree(NodeId(3)), 0);
        assert!(g.neighbors(NodeId(3)).is_empty());
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn check_node_bounds() {
        let g = triangle();
        assert!(g.check_node(NodeId(2)).is_ok());
        assert!(g.check_node(NodeId(3)).is_err());
    }

    #[test]
    fn with_edits_applies_inserts_and_deletes() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (g2, touched) = g.with_edits(&[(3, 4), (0, 2)], &[(1, 2)]).unwrap();
        assert_eq!(g2.n(), 5);
        assert_eq!(g2.m(), 4);
        assert!(g2.has_edge(NodeId(3), NodeId(4)));
        assert!(g2.has_edge(NodeId(0), NodeId(2)));
        assert!(!g2.has_edge(NodeId(1), NodeId(2)));
        assert!(g2.has_edge(NodeId(0), NodeId(1)), "untouched edge survives");
        assert_eq!(
            touched,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        // Rows stay sorted, and the edited graph equals a from-scratch build
        // of the same edge list.
        let fresh = CsrGraph::from_edges(5, &[(0, 1), (2, 3), (3, 4), (0, 2)]).unwrap();
        assert_eq!(g2.offsets(), fresh.offsets());
        assert_eq!(g2.targets(), fresh.targets());
    }

    #[test]
    fn with_edits_untouched_rows_copied_verbatim() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3), (4, 5), (1, 2)]).unwrap();
        let (g2, touched) = g.with_edits(&[], &[(4, 5)]).unwrap();
        assert_eq!(touched, vec![NodeId(4), NodeId(5)]);
        for u in [0u32, 1, 2, 3] {
            assert_eq!(g2.neighbors(NodeId(u)), g.neighbors(NodeId(u)));
        }
        assert!(g2.neighbors(NodeId(4)).is_empty());
    }

    #[test]
    fn with_edits_delete_then_reinsert_is_touched_noop() {
        let g = triangle();
        let (g2, touched) = g.with_edits(&[(0, 1)], &[(1, 0)]).unwrap();
        assert_eq!(g2.m(), 3);
        assert!(g2.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(touched, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn with_edits_rejects_bad_batches() {
        let g = triangle();
        assert!(g.with_edits(&[(0, 0)], &[]).is_err(), "self-loop");
        assert!(g.with_edits(&[(0, 3)], &[]).is_err(), "out of range");
        assert!(g.with_edits(&[(0, 1)], &[]).is_err(), "already exists");
        assert!(g.with_edits(&[], &[(0, 3)]).is_err(), "out of range del");
        let g4 = CsrGraph::from_edges(4, &[(0, 1)]).unwrap();
        assert!(g4.with_edits(&[], &[(2, 3)]).is_err(), "missing edge");
        assert!(
            g4.with_edits(&[(2, 3), (3, 2)], &[]).is_err(),
            "duplicate insertion across orientations"
        );
        assert!(
            g4.with_edits(&[], &[(0, 1), (1, 0)]).is_err(),
            "duplicate deletion across orientations"
        );
    }

    #[test]
    fn with_edits_directed_touches_only_sources() {
        let mut b = crate::GraphBuilder::directed().with_nodes(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let (g2, touched) = g.with_edits(&[(2, 3)], &[(0, 1)]).unwrap();
        assert_eq!(touched, vec![NodeId(0), NodeId(2)]);
        assert!(!g2.has_edge(NodeId(0), NodeId(1)));
        assert!(g2.has_edge(NodeId(2), NodeId(3)));
        assert!(!g2.has_edge(NodeId(3), NodeId(2)), "directed arc only");
        assert_eq!(g2.m(), 2);
    }

    #[test]
    fn dedup_and_self_loop_removal_in_from_edges() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
    }
}
