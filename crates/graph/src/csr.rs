//! Compressed-sparse-row graph storage.

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// Whether arcs are stored for one direction or both.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Every edge `{u, v}` is stored as the two arcs `u→v` and `v→u`.
    Undirected,
    /// Arcs are stored exactly as given.
    Directed,
}

/// An immutable graph in compressed-sparse-row form.
///
/// All algorithm layers in this workspace run against this structure: the
/// random-walk engine needs nothing more than *degree* and a *neighbor
/// slice*, both O(1) here. Neighbor lists are sorted, which additionally
/// gives O(log d) [`CsrGraph::has_edge`] checks and linear-time sorted-list
/// intersections for triangle counting.
///
/// Construct via [`crate::GraphBuilder`], [`CsrGraph::from_edges`], the
/// [`crate::generators`], or [`crate::edgelist`].
#[derive(Clone, Debug)]
pub struct CsrGraph {
    kind: GraphKind,
    /// `offsets[u]..offsets[u+1]` delimits `targets` entries of node `u`.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted adjacency targets.
    targets: Vec<NodeId>,
    /// Logical edge count: undirected edges or directed arcs.
    num_edges: usize,
}

impl CsrGraph {
    /// Builds an undirected simple graph (self-loops and duplicate edges
    /// removed) over nodes `0..n` from an edge list.
    ///
    /// This is the convenience constructor used throughout tests and
    /// examples; use [`crate::GraphBuilder`] for policy control.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self> {
        let mut b = crate::GraphBuilder::undirected().with_nodes(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Internal constructor from already-validated CSR parts.
    ///
    /// `targets` within each node range must be sorted. `num_edges` is the
    /// logical count (arcs for directed graphs, edges for undirected).
    pub(crate) fn from_parts(
        kind: GraphKind,
        offsets: Vec<usize>,
        targets: Vec<NodeId>,
        num_edges: usize,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        CsrGraph {
            kind,
            offsets,
            targets,
            num_edges,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of logical edges `m` (undirected edges, or directed arcs).
    #[inline]
    pub fn m(&self) -> usize {
        self.num_edges
    }

    /// Storage directionality.
    #[inline]
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Out-degree of `u` (== degree for undirected graphs).
    ///
    /// # Panics
    /// Panics if `u` is out of range (debug builds; release indexes).
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        let i = u.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Sorted slice of `u`'s (out-)neighbors.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let i = u.index();
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterator over all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.n() as u32).map(NodeId)
    }

    /// True if the arc `u→v` exists (for undirected graphs this is edge
    /// membership). O(log deg(u)) via binary search on the sorted slice.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over logical edges.
    ///
    /// Undirected: each edge yielded once with `u <= v`. Directed: every arc.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| self.kind == GraphKind::Directed || u <= v)
                .map(move |v| (u, v))
        })
    }

    /// Sum of all stored arc slots (2m for undirected simple graphs).
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n() == 0
    }

    /// Returns the maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Validates an externally supplied node id against this graph.
    pub fn check_node(&self, u: NodeId) -> Result<()> {
        if u.index() < self.n() {
            Ok(())
        } else {
            Err(GraphError::InvalidInput(format!(
                "node {u} out of range (n = {})",
                self.n()
            )))
        }
    }

    /// Raw offsets (mainly for serialization and tests).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw target array (mainly for serialization and tests).
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.arc_count(), 6);
        assert_eq!(g.kind(), GraphKind::Undirected);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 2);
        }
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (0, 2), (0, 1), (0, 3)]).unwrap();
        assert_eq!(
            g.neighbors(NodeId(0)),
            &[NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(g.degree(NodeId(0)), 4);
        assert_eq!(g.degree(NodeId(1)), 1);
    }

    #[test]
    fn edges_yields_each_once_undirected() {
        let g = triangle();
        let mut es: Vec<_> = g.edges().collect();
        es.sort();
        assert_eq!(
            es,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(1), NodeId(2))
            ]
        );
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(g.degree(NodeId(2)), 0);
        assert_eq!(g.degree(NodeId(3)), 0);
        assert!(g.neighbors(NodeId(3)).is_empty());
        assert_eq!(g.max_degree(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn check_node_bounds() {
        let g = triangle();
        assert!(g.check_node(NodeId(2)).is_ok());
        assert!(g.check_node(NodeId(3)).is_err());
    }

    #[test]
    fn dedup_and_self_loop_removal_in_from_edges() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
    }
}
