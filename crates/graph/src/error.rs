//! Error types for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced by graph building, parsing and validation.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
    /// A malformed line in an edge-list file.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Structurally invalid request (e.g. a generator with impossible
    /// parameters, or an edge referencing a node outside `[0, n)`).
    InvalidInput(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::InvalidInput("k > n".into());
        assert!(e.to_string().contains("k > n"));
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = GraphError::from(io::Error::other("disk"));
        assert!(e.source().is_some());
        assert!(GraphError::InvalidInput("x".into()).source().is_none());
    }
}
