//! Property-based tests for the graph substrate: CSR invariants, builder
//! policies, generator guarantees, I/O round-trips, traversal consistency.

// Indexing parallel arrays by position is clearer than zipped iterators
// in these oracle comparisons.
#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use rwd_graph::generators::{barabasi_albert, erdos_renyi_gnm, random_regular, watts_strogatz};
use rwd_graph::traversal::{bfs_distances, connected_components, UNREACHABLE};
use rwd_graph::{CsrGraph, NodeId};

/// Strategy: arbitrary edge lists over up to 12 nodes.
fn edge_lists() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..=12).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n as u32, 0..n as u32), 0..40),
        )
    })
}

proptest! {
    /// CSR structural invariants hold for any input edge list.
    #[test]
    fn csr_invariants((n, edges) in edge_lists()) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        prop_assert_eq!(g.n(), n);
        // Degree sum = 2m for undirected simple graphs.
        let degree_sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.m());
        prop_assert_eq!(g.arc_count(), 2 * g.m());
        // Neighbor lists sorted, deduped, no self-loops, symmetric.
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted+dedup");
            prop_assert!(!nbrs.contains(&u), "no self-loop");
            for &v in nbrs {
                prop_assert!(g.has_edge(v, u), "symmetry {u} {v}");
            }
        }
        // edges() yields exactly m pairs with u <= v.
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.m());
        prop_assert!(listed.iter().all(|&(u, v)| u <= v));
    }

    /// Edge-list I/O round-trips any graph (up to relabeling, which is
    /// identity here because ids are dense and edges() emits sorted pairs).
    #[test]
    fn edgelist_round_trip((n, edges) in edge_lists()) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        prop_assume!(g.m() > 0);
        let mut buf = Vec::new();
        rwd_graph::edgelist::write_edge_list_to(&g, &mut buf).unwrap();
        let reloaded = rwd_graph::edgelist::parse_edge_list(
            std::str::from_utf8(&buf).unwrap(),
        )
        .unwrap();
        prop_assert_eq!(reloaded.graph.m(), g.m());
        // Every original edge must exist under the relabeling.
        for (u, v) in g.edges() {
            let du = reloaded.original_ids.iter()
                .position(|&x| x == u.index() as u64).unwrap();
            let dv = reloaded.original_ids.iter()
                .position(|&x| x == v.index() as u64).unwrap();
            prop_assert!(reloaded.graph.has_edge(NodeId::new(du), NodeId::new(dv)));
        }
    }

    /// BFS distances satisfy the triangle property along edges: adjacent
    /// nodes' distances differ by at most 1.
    #[test]
    fn bfs_is_metric_consistent((n, edges) in edge_lists(), src in 0u32..12) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let src = NodeId(src % n as u32);
        let d = bfs_distances(&g, src);
        prop_assert_eq!(d[src.index()], 0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u.index()], d[v.index()]);
            match (du == UNREACHABLE, dv == UNREACHABLE) {
                (true, true) => {}
                (false, false) => {
                    prop_assert!(du.abs_diff(dv) <= 1, "edge {u}-{v}: {du} vs {dv}");
                }
                _ => prop_assert!(false, "edge crossing reachability boundary"),
            }
        }
    }

    /// Components partition the nodes; nodes share a label iff connected.
    #[test]
    fn components_partition((n, edges) in edge_lists()) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), n);
        prop_assert_eq!(c.sizes.len(), c.count);
        for (u, v) in g.edges() {
            prop_assert_eq!(c.labels[u.index()], c.labels[v.index()]);
        }
        // BFS reachability agrees with labels.
        let d = bfs_distances(&g, NodeId(0));
        for u in 0..n {
            prop_assert_eq!(
                d[u] != UNREACHABLE,
                c.labels[u] == c.labels[0],
                "node {} reachability vs label", u
            );
        }
    }

    /// Generators produce simple graphs of the promised size, connected
    /// where guaranteed.
    #[test]
    fn generators_keep_promises(seed in 0u64..200) {
        let ba = barabasi_albert(60, 3, seed).unwrap();
        prop_assert_eq!(ba.n(), 60);
        prop_assert_eq!(ba.m(), 6 + 56 * 3);
        prop_assert!(connected_components(&ba).is_connected());

        let gnm = erdos_renyi_gnm(40, 70, seed).unwrap();
        prop_assert_eq!(gnm.m(), 70);

        let ws = watts_strogatz(40, 4, 0.3, seed).unwrap();
        prop_assert_eq!(ws.m(), 80);

        let rr = random_regular(30, 4, seed).unwrap();
        for u in rr.nodes() {
            prop_assert_eq!(rr.degree(u), 4);
        }
    }

    /// Induced subgraphs keep exactly the internal edges.
    #[test]
    fn induced_subgraph_edge_set((n, edges) in edge_lists(), keep_mask in 0u32..4096) {
        let g = CsrGraph::from_edges(n, &edges).unwrap();
        let keep: Vec<NodeId> = (0..n)
            .filter(|&i| keep_mask >> (i % 12) & 1 == 1)
            .map(NodeId::new)
            .collect();
        let (sub, mapping) = rwd_graph::subgraph::induced(&g, &keep);
        prop_assert_eq!(sub.n(), mapping.len());
        // Every subgraph edge maps to an original edge.
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(mapping[a.index()], mapping[b.index()]));
        }
        // Count internal original edges = subgraph edges.
        let kept: std::collections::HashSet<NodeId> = keep.iter().copied().collect();
        let internal = g
            .edges()
            .filter(|(u, v)| kept.contains(u) && kept.contains(v))
            .count();
        prop_assert_eq!(sub.m(), internal);
    }
}
