//! Property tests for the O(1) alias-table neighbor sampler.
//!
//! The alias table must encode *exactly* the same categorical distribution
//! as the O(log d) cumulative-weight binary search it replaced. Two checks:
//!
//! * an analytical one — unfolding the table reconstructs `w_i / strength`
//!   for every neighbor to fp precision, and
//! * a statistical one — on random weighted stars, the empirical neighbor
//!   counts of both samplers (driven by the same uniform stream) pass a
//!   chi-squared-style comparison against each other and against the exact
//!   weights.

use proptest::prelude::*;
use proptest::TestRng;
use rwd_graph::weighted::WeightedCsrGraph;
use rwd_graph::NodeId;

/// Uniform f64 in [0, 1) from the proptest shim's deterministic RNG.
fn unit_f64(rng: &mut TestRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Builds a star: node 0 joined to nodes `1..=d` with the given weights.
fn star(weights: &[f64]) -> WeightedCsrGraph {
    let edges: Vec<(u32, u32, f64)> = weights
        .iter()
        .enumerate()
        .map(|(i, &w)| (0, i as u32 + 1, w))
        .collect();
    WeightedCsrGraph::from_weighted_edges(weights.len() + 1, &edges).unwrap()
}

/// Pearson's chi-squared statistic of observed counts vs expected counts.
fn chi_squared(observed: &[u64], expected: &[f64]) -> f64 {
    observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            let diff = o as f64 - e;
            diff * diff / e.max(1e-12)
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Statistical agreement: alias draws and binary-search draws over the
    /// same weighted node produce neighbor distributions that both match
    /// the exact weights within a generous chi-squared bound.
    #[test]
    fn alias_and_binary_search_sample_the_same_distribution(
        (weights, seed) in (2usize..=12).prop_flat_map(|d| {
            // Weights in [1, 1000] — up to 3 orders of magnitude of skew.
            (collection::vec(1u32..=1000, d..=d), 0u64..u64::MAX)
        }).prop_map(|(ws, seed)| {
            (ws.into_iter().map(|w| w as f64).collect::<Vec<f64>>(), seed)
        }),
    ) {
        let g = star(&weights);
        let hub = NodeId(0);
        let d = weights.len();
        let total: f64 = weights.iter().sum();
        const SAMPLES: u64 = 4000;

        let mut rng = TestRng::new(seed);
        let mut alias_counts = vec![0u64; d];
        let mut bsearch_counts = vec![0u64; d];
        for _ in 0..SAMPLES {
            let x = unit_f64(&mut rng);
            // Same uniform draw drives both samplers: any systematic
            // distribution difference shows up directly in the counts.
            let a = g.pick_neighbor_alias(hub, x).unwrap();
            let b = g.pick_neighbor(hub, x).unwrap();
            alias_counts[a.index() - 1] += 1;
            bsearch_counts[b.index() - 1] += 1;
        }

        let expected: Vec<f64> = weights
            .iter()
            .map(|w| w / total * SAMPLES as f64)
            .collect();
        // 99.9th-percentile chi-squared for d−1 ≤ 11 dof is ≈ 31.3; use a
        // slack bound so the 24 cases stay flake-free while still catching
        // a mis-built table (which shifts counts by whole percents).
        let bound = 60.0;
        let chi_alias = chi_squared(&alias_counts, &expected);
        let chi_bsearch = chi_squared(&bsearch_counts, &expected);
        prop_assert!(
            chi_alias < bound,
            "alias sampler diverges from weights: chi2 {chi_alias} (d={d})"
        );
        prop_assert!(
            chi_bsearch < bound,
            "oracle sampler diverges from weights: chi2 {chi_bsearch} (d={d})"
        );
        // And the two empirical distributions agree with each other — pooled
        // form (a−b)²/(a+b), which stays finite when one sampler lands zero
        // draws in a rare category.
        let chi_cross: f64 = alias_counts
            .iter()
            .zip(&bsearch_counts)
            .filter(|&(&a, &b)| a + b > 0)
            .map(|(&a, &b)| {
                let diff = a as f64 - b as f64;
                diff * diff / (a + b) as f64
            })
            .sum();
        prop_assert!(
            chi_cross < bound,
            "samplers disagree with each other: chi2 {chi_cross} (d={d})"
        );
    }

    /// Analytical agreement: unfolding the alias table via repeated sampling
    /// on a fine deterministic grid reproduces each neighbor's probability
    /// to ~1/GRID accuracy (the grid hits every bucket boundary pattern).
    #[test]
    fn alias_grid_sweep_matches_weights(
        weights in (2usize..=8).prop_flat_map(|d| collection::vec(1u32..=64, d..=d))
            .prop_map(|ws| ws.into_iter().map(|w| w as f64).collect::<Vec<f64>>()),
    ) {
        let g = star(&weights);
        let hub = NodeId(0);
        let d = weights.len();
        let total: f64 = weights.iter().sum();
        const GRID: usize = 200_000;
        let mut counts = vec![0u64; d];
        for i in 0..GRID {
            // Midpoint grid avoids landing exactly on bucket boundaries.
            let x = (i as f64 + 0.5) / GRID as f64;
            let v = g.pick_neighbor_alias(hub, x).unwrap();
            counts[v.index() - 1] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let got = counts[i] as f64 / GRID as f64;
            let want = w / total;
            prop_assert!(
                (got - want).abs() < 2.0 / GRID as f64 * d as f64 + 1e-9,
                "neighbor {i}: grid mass {got} vs exact {want}"
            );
        }
    }
}
