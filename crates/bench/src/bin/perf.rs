//! The repo's perf trajectory: one binary, one JSON snapshot per PR.
//!
//! Times the sampling→index→greedy hot path end to end —
//!
//! * inverted-index build, unweighted and weighted (alias-table walks),
//!   single-threaded vs all cores (the 2-D build-grid speedup),
//! * one full `gains_all` sweep (the per-round cost of paper-faithful
//!   Algorithm 6),
//! * a complete k=20 CELF lazy greedy from a prebuilt index,
//!
//! and writes the measurements as JSON (default `BENCH_2.json`, the
//! PR-2 snapshot; later PRs add `BENCH_<n>.json` files beside it so the
//! trajectory stays diffable).
//!
//! Usage: `cargo run --release -p rwd-bench --bin perf -- [--scale small|full]
//! [--out PATH] [--reps N]`. The small scale exists for CI, where the run
//! must take seconds; numbers are only comparable within one machine.

use std::time::Instant;

use rwd_core::algo::select_from_index;
use rwd_core::greedy::approx::{GainEngine, GainRule};
use rwd_graph::generators::barabasi_albert;
use rwd_graph::weighted::weighted_twin;
use rwd_walks::WalkIndex;

struct Scale {
    name: &'static str,
    n: usize,
    mdeg: usize,
    l: u32,
    r: usize,
    k: usize,
}

const FULL: Scale = Scale {
    name: "full",
    n: 50_000,
    mdeg: 8,
    l: 10,
    r: 16,
    k: 20,
};

const SMALL: Scale = Scale {
    name: "small",
    n: 4_000,
    mdeg: 6,
    l: 8,
    r: 16,
    k: 20,
};

const GRAPH_SEED: u64 = 0x2013;
const WALK_SEED: u64 = 7;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

fn main() {
    let mut scale = FULL;
    let mut out_path = String::from("BENCH_2.json");
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("small") => scale = SMALL,
                Some("full") => scale = FULL,
                other => {
                    eprintln!("--scale expects small|full, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                }
            },
            "--reps" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => reps = v,
                other => {
                    eprintln!("--reps expects a positive integer, got {other:?}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other}; usage: perf [--scale small|full] [--out PATH] [--reps N]");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |t| t.get());
    eprintln!(
        "perf: scale={} n={} mdeg={} l={} r={} k={} reps={} cores={}",
        scale.name, scale.n, scale.mdeg, scale.l, scale.r, scale.k, reps, cores
    );

    let g = barabasi_albert(scale.n, scale.mdeg, GRAPH_SEED).expect("valid BA parameters");
    let wg = weighted_twin(&g, GRAPH_SEED).expect("valid weighted twin");

    // --- index builds: 1 thread vs all cores, unweighted and weighted ----
    let (uw_1t, idx_1t) = time_ms(reps, || {
        WalkIndex::build_with_threads(&g, scale.l, scale.r, WALK_SEED, 1)
    });
    eprintln!("  unweighted build, 1 thread : {} ms", fmt_ms(uw_1t));
    let (uw_all, idx) = time_ms(reps, || {
        WalkIndex::build_with_threads(&g, scale.l, scale.r, WALK_SEED, 0)
    });
    eprintln!("  unweighted build, all cores: {} ms", fmt_ms(uw_all));
    assert_eq!(
        idx.total_postings(),
        idx_1t.total_postings(),
        "thread count changed the index"
    );

    let (w_1t, widx_1t) = time_ms(reps, || {
        WalkIndex::build_weighted_with_threads(&wg, scale.l, scale.r, WALK_SEED, 1)
    });
    eprintln!("  weighted build,   1 thread : {} ms", fmt_ms(w_1t));
    let (w_all, widx) = time_ms(reps, || {
        WalkIndex::build_weighted_with_threads(&wg, scale.l, scale.r, WALK_SEED, 0)
    });
    eprintln!("  weighted build,   all cores: {} ms", fmt_ms(w_all));
    assert_eq!(
        widx.total_postings(),
        widx_1t.total_postings(),
        "thread count changed the weighted index"
    );

    // --- one paper-faithful gains_all sweep ------------------------------
    let (sweep_ms, _) = time_ms(reps, || {
        let engine = GainEngine::new(&idx, GainRule::HittingTime);
        engine.gains_all()
    });
    eprintln!("  gains_all sweep            : {} ms", fmt_ms(sweep_ms));

    // --- full k-selection via CELF on the prebuilt index -----------------
    let (greedy_ms, sel) = time_ms(reps, || {
        select_from_index(&idx, GainRule::HittingTime, scale.k, true, 0)
            .expect("valid selection parameters")
    });
    eprintln!(
        "  lazy greedy (k={})         : {} ms ({} evaluations)",
        scale.k,
        fmt_ms(greedy_ms),
        sel.evaluations
    );

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());

    let json = format!(
        r#"{{
  "schema": "rwd-perf/1",
  "pr": 2,
  "unix_secs": {unix_secs},
  "cores": {cores},
  "scale": "{scale_name}",
  "graph": {{ "model": "barabasi_albert", "n": {n}, "m": {m}, "mdeg": {mdeg}, "seed": {gseed} }},
  "params": {{ "l": {l}, "r": {r}, "k": {k}, "walk_seed": {wseed}, "reps": {reps} }},
  "index": {{ "total_postings": {postings}, "memory_bytes": {mem} }},
  "timings_ms": {{
    "index_build_unweighted_1t": {uw_1t},
    "index_build_unweighted_all": {uw_all},
    "index_build_weighted_1t": {w_1t},
    "index_build_weighted_all": {w_all},
    "gains_all_sweep": {sweep},
    "lazy_greedy_full": {greedy}
  }},
  "speedups": {{
    "unweighted_build_all_vs_1t": {uw_speedup},
    "weighted_build_all_vs_1t": {w_speedup}
  }},
  "greedy_evaluations": {evals}
}}
"#,
        scale_name = scale.name,
        n = g.n(),
        m = g.m(),
        mdeg = scale.mdeg,
        gseed = GRAPH_SEED,
        l = scale.l,
        r = scale.r,
        k = scale.k,
        wseed = WALK_SEED,
        postings = idx.total_postings(),
        mem = idx.memory_bytes(),
        uw_1t = fmt_ms(uw_1t),
        uw_all = fmt_ms(uw_all),
        w_1t = fmt_ms(w_1t),
        w_all = fmt_ms(w_all),
        sweep = fmt_ms(sweep_ms),
        greedy = fmt_ms(greedy_ms),
        uw_speedup = fmt_ms(uw_1t / uw_all.max(1e-9)),
        w_speedup = fmt_ms(w_1t / w_all.max(1e-9)),
        evals = sel.evaluations,
    );
    std::fs::write(&out_path, json).expect("write perf snapshot");
    eprintln!("perf: wrote {out_path}");
}
