//! The repo's perf trajectory: one binary, one JSON snapshot per PR.
//!
//! Times the sampling→index→greedy hot path end to end —
//!
//! * inverted-index build, unweighted and weighted (alias-table walks),
//!   single-threaded vs all cores (the 2-D build-grid speedup),
//! * one full `gains_all` sweep (the per-round cost of paper-faithful
//!   Algorithm 6),
//! * a complete CELF lazy greedy from a prebuilt index,
//! * the same selection under `Strategy::Delta` — the output-sensitive
//!   engine over the dual-view index — with per-round touched-posting
//!   counts showing how little each round actually re-reads,
//! * the evolving pipeline: a deterministic temporal edge trace applied
//!   batch by batch, timing graph edit + **incremental index refresh**
//!   against a full per-batch rebuild (asserted bit-identical), with
//!   per-batch resampled-group counts,
//! * the serving path: the threaded query server answering point queries
//!   **while churn batches apply concurrently** — throughput plus
//!   p50/p99/max point-query latency, against the full-sweep estimator
//!   time the point path replaces,
//! * the sharded engine core: the same churn trace through 1/2/4-shard
//!   scatter-gather coordinators (results asserted identical to the
//!   single-shard engine), with per-count batch-apply totals and gathered
//!   point-query service latency,
//! * cross-epoch seed repair: the churn trace through a warm engine
//!   (persistent gain tables patched by each refresh's posting-edit
//!   script, recorded rounds replayed from their logs) vs one forced cold
//!   every batch — seeds asserted bit-identical, the warm-vs-cold ratio
//!   feeding the CI gate,
//! * the durability layer: per-batch write-ahead journal overhead (plain
//!   vs journaled apply of the same trace), one full snapshot write, and
//!   crash recovery (snapshot + journal-suffix replay) vs a from-scratch
//!   rebuild — asserted bit-identical, the ratio feeding the CI gate,
//! * the observability layer: the cost of the metrics hot path itself —
//!   the same point query with and without an RAII timer + histogram
//!   record around it (the ratio feeding the ≤ 1.1x CI gate) — plus
//!   cross-epoch answer-stability telemetry (per-epoch seed-set Jaccard,
//!   seeds swapped, objective drift) over the churn trace,
//! * the open path: bringing a saved index back — zero-copy `mmap` open
//!   of an RWDIDX4 snapshot vs deserializing the same file vs rebuilding
//!   from the graph, plus the restart drill end to end (DurableEngine
//!   open in both modes through the first answered point query), with the
//!   heap/mapped byte split and the deserializer's transient peak as the
//!   RSS story — the mapped-vs-deserialize ratio feeding the CI gate,
//!
//! and writes the measurements as JSON (default `BENCH_10.json`, the
//! PR-10 snapshot; earlier `BENCH_<n>.json` files stay beside it so the
//! trajectory is diffable).
//!
//! Schema `rwd-perf/9` (extends `rwd-perf/8` with the `open` block):
//! every timing records the worker count it actually ran with, and
//! `available_parallelism` is a top-level field — so a snapshot taken
//! on a 1-core container is self-describing instead of silently reporting
//! ~1.0 speedups. All latency percentiles come from `rwd-obs`'s
//! log-bucketed histograms (32 sub-buckets per octave, ≤ 3.2% relative
//! error) — the exact quantile implementation the engine itself exposes —
//! instead of a private sort-and-index.
//!
//! Usage: `cargo run --release -p rwd-bench --bin perf -- [--scale small|full]
//! [--out PATH] [--reps N]`. The small scale exists for CI, where the run
//! must take seconds; numbers are only comparable within one machine.
//!
//! The full scale keeps the Barabási–Albert graph of every previous
//! snapshot (trajectory comparability). The small scale uses an
//! Erdős–Rényi graph: on a 4k-node BA graph the hubs' inverted lists are a
//! double-digit percentage of the whole index, which makes per-seed repair
//! work degenerate-large relative to one sweep — a homogeneous graph is
//! the representative regime for the strategy comparison CI asserts.

use std::time::Instant;

use rwd_core::algo::{delta_greedy_with_stats, select_from_index};
use rwd_core::greedy::approx::{GainEngine, GainRule};
use rwd_core::Strategy;
use rwd_datasets::temporal::{temporal_trace, TemporalTraceSpec, TraceModel};
use rwd_graph::generators::{barabasi_albert, erdos_renyi_gnp};
use rwd_graph::weighted::weighted_twin;
use rwd_graph::{CsrGraph, NodeId};
use rwd_serve::{Query, ServeEngine, Server, Snapshot};
use rwd_stream::{StreamConfig, StreamEngine};
use rwd_walks::{NodeSet, WalkIndex};

#[derive(Clone, Copy)]
enum Model {
    /// Barabási–Albert with `mdeg` attachments per node.
    Ba,
    /// Erdős–Rényi `G(n, p)` with `p = mdeg / n` (mean degree `mdeg`).
    ErdosRenyi,
}

impl Model {
    fn json_name(self) -> &'static str {
        match self {
            Model::Ba => "barabasi_albert",
            Model::ErdosRenyi => "erdos_renyi_gnp",
        }
    }

    fn build(self, n: usize, mdeg: usize, seed: u64) -> CsrGraph {
        match self {
            Model::Ba => barabasi_albert(n, mdeg, seed).expect("valid BA parameters"),
            Model::ErdosRenyi => {
                erdos_renyi_gnp(n, mdeg as f64 / n as f64, seed).expect("valid ER parameters")
            }
        }
    }
}

struct Scale {
    name: &'static str,
    model: Model,
    n: usize,
    mdeg: usize,
    l: u32,
    r: usize,
    k: usize,
    /// Temporal-trace batches timed by the stream block.
    stream_batches: usize,
    /// Edits per batch — sized so touched nodes stay ≤ 10% of `n` (at most
    /// two endpoints per edit), the regime the incremental-vs-rebuild CI
    /// assertion targets.
    stream_edits: usize,
}

const FULL: Scale = Scale {
    name: "full",
    model: Model::Ba,
    n: 50_000,
    mdeg: 8,
    l: 10,
    r: 16,
    k: 20,
    stream_batches: 6,
    stream_edits: 100,
};

const SMALL: Scale = Scale {
    name: "small",
    model: Model::ErdosRenyi,
    n: 4_000,
    mdeg: 12,
    l: 8,
    r: 16,
    k: 20,
    stream_batches: 6,
    stream_edits: 20,
};

const GRAPH_SEED: u64 = 0x2013;
const WALK_SEED: u64 = 7;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("reps >= 1"))
}

fn fmt_ms(v: f64) -> String {
    format!("{v:.3}")
}

/// A number for the JSON snapshot: `null` when the measurement does not
/// exist on this host (e.g. mapped opens off-unix).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        fmt_ms(v)
    } else {
        String::from("null")
    }
}

/// One named timing with the worker count it actually ran with.
struct Timing {
    name: &'static str,
    ms: f64,
    threads: usize,
}

/// Latency percentile over samples in µs, computed through the same
/// log-bucketed [`rwd_obs::Histogram`] the engine's metrics registry
/// exposes — one quantile implementation everywhere, instead of the old
/// private sort-and-index.
fn percentile_us(samples_us: &[f64], q: f64) -> f64 {
    let h = rwd_obs::Histogram::new();
    for &s in samples_us {
        h.record((s * 1e3).max(0.0) as u64);
    }
    h.quantile(q) / 1e3
}

fn main() {
    let mut scale = FULL;
    let mut out_path = String::from("BENCH_10.json");
    let mut reps = 3usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("small") => scale = SMALL,
                Some("full") => scale = FULL,
                other => {
                    eprintln!("--scale expects small|full, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                }
            },
            "--reps" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(v)) if v >= 1 => reps = v,
                other => {
                    eprintln!("--reps expects a positive integer, got {other:?}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other}; usage: perf [--scale small|full] [--out PATH] [--reps N]");
                std::process::exit(2);
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |t| t.get());
    // Layer-parallel passes cap their fan-out at the layer count.
    let layer_threads = cores.min(scale.r);
    eprintln!(
        "perf: scale={} n={} mdeg={} l={} r={} k={} reps={} available_parallelism={}",
        scale.name, scale.n, scale.mdeg, scale.l, scale.r, scale.k, reps, cores
    );

    let g = scale.model.build(scale.n, scale.mdeg, GRAPH_SEED);
    let wg = weighted_twin(&g, GRAPH_SEED).expect("valid weighted twin");
    let mut timings: Vec<Timing> = Vec::new();
    let mut record = |name: &'static str, ms: f64, threads: usize| {
        eprintln!("  {name:<27}: {} ms ({threads} thread(s))", fmt_ms(ms));
        timings.push(Timing { name, ms, threads });
    };

    // --- index builds: 1 thread vs all cores, unweighted and weighted ----
    let (uw_1t, idx_1t) = time_ms(reps, || {
        WalkIndex::build_with_threads(&g, scale.l, scale.r, WALK_SEED, 1)
    });
    record("index_build_unweighted_1t", uw_1t, 1);
    let (uw_all, idx) = time_ms(reps, || {
        WalkIndex::build_with_threads(&g, scale.l, scale.r, WALK_SEED, 0)
    });
    record("index_build_unweighted_all", uw_all, cores);
    assert_eq!(
        idx.total_postings(),
        idx_1t.total_postings(),
        "thread count changed the index"
    );

    let (w_1t, widx_1t) = time_ms(reps, || {
        WalkIndex::build_weighted_with_threads(&wg, scale.l, scale.r, WALK_SEED, 1)
    });
    record("index_build_weighted_1t", w_1t, 1);
    let (w_all, widx) = time_ms(reps, || {
        WalkIndex::build_weighted_with_threads(&wg, scale.l, scale.r, WALK_SEED, 0)
    });
    record("index_build_weighted_all", w_all, cores);
    assert_eq!(
        widx.total_postings(),
        widx_1t.total_postings(),
        "thread count changed the weighted index"
    );

    // --- one paper-faithful gains_all sweep ------------------------------
    let (sweep_ms, _) = time_ms(reps, || {
        let engine = GainEngine::new(&idx, GainRule::HittingTime);
        engine.gains_all()
    });
    record("gains_all_sweep", sweep_ms, layer_threads);

    // --- full k-selection via CELF on the prebuilt index -----------------
    let (celf_ms, celf) = time_ms(reps, || {
        select_from_index(&idx, GainRule::HittingTime, scale.k, Strategy::Celf, 0)
            .expect("valid selection parameters")
    });
    record("celf_greedy_full", celf_ms, layer_threads);
    eprintln!("      CELF evaluations       : {}", celf.evaluations);

    // --- the same selection via delta-maintained gains -------------------
    let (delta_ms, (delta, touched)) = time_ms(reps, || {
        delta_greedy_with_stats(&idx, GainRule::HittingTime, scale.k, 0)
            .expect("valid selection parameters")
    });
    record("delta_greedy_full", delta_ms, layer_threads);
    assert_eq!(
        celf.nodes, delta.nodes,
        "Strategy::Delta must select the same seeds as CELF"
    );
    assert_eq!(
        celf.gain_trace, delta.gain_trace,
        "Strategy::Delta must report identical gains"
    );
    eprintln!(
        "      touched postings/round : {touched:?} (index total {})",
        idx.total_postings()
    );

    // --- evolving pipeline: incremental refresh vs per-batch rebuild -----
    // The trace spec reuses the scale's model/seed, so its base graph is
    // the graph already benchmarked above; each batch is timed once (the
    // index mutates, so reps would measure a different epoch).
    let spec = TemporalTraceSpec {
        model: match scale.model {
            Model::Ba => TraceModel::BarabasiAlbert { mdeg: scale.mdeg },
            Model::ErdosRenyi => TraceModel::ErdosRenyi {
                mean_degree: scale.mdeg as f64,
            },
        },
        nodes: scale.n,
        batches: scale.stream_batches,
        batch_edits: scale.stream_edits,
        delete_fraction: 0.5,
        seed: GRAPH_SEED,
    };
    let trace = temporal_trace(&spec).expect("valid trace spec");
    assert_eq!(trace.base.m(), g.m(), "trace base must be the bench graph");
    let mut inc = idx.clone();
    let mut cur = g.clone();
    let (mut apply_ms, mut refresh_ms, mut rebuild_ms) = (0.0f64, 0.0f64, 0.0f64);
    let mut touched_per_batch: Vec<usize> = Vec::new();
    let mut groups_per_batch: Vec<usize> = Vec::new();
    for batch in &trace.batches {
        let t0 = Instant::now();
        let delta = batch.apply(&cur).expect("trace batches are valid");
        apply_ms += t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let stats = inc.refresh_with_threads(&delta.graph, &delta.touched, 0);
        refresh_ms += t1.elapsed().as_secs_f64() * 1e3;
        let t2 = Instant::now();
        let rebuilt = WalkIndex::build_with_threads(&delta.graph, scale.l, scale.r, WALK_SEED, 0);
        rebuild_ms += t2.elapsed().as_secs_f64() * 1e3;
        assert!(
            inc == rebuilt,
            "incremental refresh must be bit-identical to a rebuild"
        );
        touched_per_batch.push(delta.touched.len());
        groups_per_batch.push(stats.groups_resampled);
        cur = delta.graph;
    }
    let groups_total = inc.n() * inc.r();
    let max_touched_fraction = touched_per_batch
        .iter()
        .map(|&t| t as f64 / scale.n as f64)
        .fold(0.0f64, f64::max);
    record("stream_batch_apply_total", apply_ms, 1);
    record("stream_refresh_total", refresh_ms, cores);
    record("stream_rebuild_total", rebuild_ms, cores);
    eprintln!(
        "      stream: {} batches × {} edits; touched/batch {touched_per_batch:?}; \
         groups resampled/batch {groups_per_batch:?} of {groups_total}; \
         incremental {refresh_ms:.1} ms vs rebuild {rebuild_ms:.1} ms ({:.2}x)",
        scale.stream_batches,
        scale.stream_edits,
        rebuild_ms / refresh_ms.max(1e-9),
    );

    // --- serving path: point queries racing concurrent churn -------------
    // The comparator the CI gate uses: one full-sweep hit-time estimate on
    // the current index — the cost a point query must stay well under.
    let final_seeds = select_from_index(&inc, GainRule::HittingTime, scale.k, Strategy::Delta, 0)
        .expect("valid selection parameters")
        .nodes;
    let final_set = NodeSet::from_nodes(scale.n, final_seeds.iter().copied());
    let (full_sweep_ms, _) = time_ms(reps, || inc.estimate_hit_times(&final_set));
    record("estimate_hit_times_sweep", full_sweep_ms, cores);

    let serve_queries: usize = if scale.n >= 10_000 { 4000 } else { 1500 };
    let query_workers = cores.saturating_sub(1).max(1);
    let serve_cfg = StreamConfig {
        l: scale.l,
        r: scale.r,
        k: scale.k,
        seed: WALK_SEED,
        rule: GainRule::HittingTime,
        threads: 0,
    };
    let stream_engine = StreamEngine::new(g.clone(), serve_cfg).expect("valid serve configuration");
    let server = Server::start(ServeEngine::from_stream(stream_engine), query_workers);
    let handle = server.handle();
    // Feed the whole churn trace to the writer up front: the queries below
    // then race real batch applications the entire run.
    let apply_tickets: Vec<_> = trace
        .batches
        .iter()
        .map(|b| handle.apply(b.clone()).expect("server accepting"))
        .collect();
    let t0 = Instant::now();
    let mut point_us: Vec<f64> = Vec::with_capacity(serve_queries);
    let mut other_queries = 0usize;
    const WINDOW: usize = 64;
    let mut pending: Vec<(bool, rwd_serve::Ticket<rwd_serve::QueryAnswer>)> =
        Vec::with_capacity(WINDOW);
    let mut issued = 0usize;
    while issued < serve_queries {
        pending.clear();
        while pending.len() < WINDOW && issued < serve_queries {
            issued += 1;
            let (point, query) = match issued % 16 {
                15 => (false, Query::Coverage),
                14 => (false, Query::TopUncovered(8)),
                13 => (false, Query::Seeds),
                i if i % 2 == 0 => (
                    true,
                    Query::HitTime(NodeId((issued * 131 % scale.n) as u32)),
                ),
                _ => (
                    true,
                    Query::HitProb(NodeId((issued * 197 % scale.n) as u32)),
                ),
            };
            pending.push((point, handle.query(query).expect("server accepting")));
        }
        for (point, ticket) in pending.drain(..) {
            let answer = ticket.wait();
            if point {
                point_us.push(answer.latency.as_secs_f64() * 1e6);
            } else {
                other_queries += 1;
            }
        }
    }
    let serve_wall_s = t0.elapsed().as_secs_f64();
    let mut batches_applied = 0usize;
    for t in apply_tickets {
        let outcome = t.wait();
        outcome.report.expect("trace batches are valid");
        batches_applied += 1;
    }
    let final_snapshot = handle.snapshot();
    server.shutdown();
    assert_eq!(final_snapshot.epoch(), batches_applied as u64);
    let (p50_us, p99_us) = (
        percentile_us(&point_us, 0.50),
        percentile_us(&point_us, 0.99),
    );
    let max_us = point_us.iter().copied().fold(0.0f64, f64::max);
    let throughput_qps = serve_queries as f64 / serve_wall_s.max(1e-9);

    // Service time of one point query against a pinned snapshot — the
    // apples-to-apples comparator against the full sweep it replaces
    // (end-to-end latency above additionally includes queueing behind
    // other requests and, on starved machines, behind churn CPU).
    let mut service_us: Vec<f64> = Vec::with_capacity(1000);
    for i in 0..1000usize {
        let v = NodeId((i * 131 % scale.n) as u32);
        let t = Instant::now();
        let x = if i % 2 == 0 {
            final_snapshot.hit_time(v)
        } else {
            final_snapshot.hit_prob(v)
        };
        service_us.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(x.is_finite());
    }
    let service_p99_us = percentile_us(&service_us, 0.99);
    record("serve_point_service_p99", service_p99_us / 1e3, 1);
    eprintln!(
        "      serve: {serve_queries} queries ({} point + {other_queries} set) over \
         {query_workers} worker(s) racing {batches_applied} batches; \
         {throughput_qps:.0} q/s; end-to-end point p50 {p50_us:.1} µs \
         p99 {p99_us:.1} µs max {max_us:.1} µs; service p99 {service_p99_us:.1} µs \
         vs full sweep {full_sweep_ms:.3} ms",
        point_us.len(),
    );

    // --- observability: the cost of the metrics hot path itself ----------
    // The CI gate: the instrumented point-query service unit must keep p99
    // within 1.1x of the uninstrumented one. The measured unit mirrors the
    // server worker's service window exactly: a dequeue timestamp, then
    // pin the published snapshot (RwLock read + cheap clone) and answer,
    // then an end timestamp. Inside that window this PR added only a few
    // atomic gauge updates (queue-depth dec, pinned-snapshot inc, epoch
    // lag check); the two histogram records and the pinned dec happen
    // after the end timestamp — exactly as in `query_worker` — so they
    // cost throughput but never inflate a request's reported service
    // time. Best-of-reps on each side gives the same noise discipline as
    // `time_ms`.
    let obs_queries = 8000usize;
    let obs_reps = reps.max(3);
    let published = std::sync::RwLock::new(final_snapshot.clone());
    let service_probe_hist = rwd_obs::Histogram::new();
    let queue_probe_hist = rwd_obs::Histogram::new();
    let probe_depth = rwd_obs::Gauge::new();
    let probe_pinned = rwd_obs::Gauge::new();
    let probe_epoch = rwd_obs::Gauge::new();
    let probe_lag = rwd_obs::Counter::new();
    probe_epoch.set(final_snapshot.epoch() as i64);
    let (mut plain_p99_us, mut instr_p99_us) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..obs_reps {
        let mut us: Vec<f64> = Vec::with_capacity(obs_queries);
        for i in 0..obs_queries {
            let v = NodeId((i * 131 % scale.n) as u32);
            let dequeued = Instant::now();
            let snap = published.read().expect("snapshot lock").clone();
            let x = if i % 2 == 0 {
                snap.hit_time(v)
            } else {
                snap.hit_prob(v)
            };
            let end = Instant::now();
            us.push(end.duration_since(dequeued).as_secs_f64() * 1e6);
            assert!(x.is_finite());
        }
        plain_p99_us = plain_p99_us.min(percentile_us(&us, 0.99));
        us.clear();
        for i in 0..obs_queries {
            let v = NodeId((i * 131 % scale.n) as u32);
            let dequeued = Instant::now();
            probe_depth.dec();
            probe_pinned.inc();
            let snap = published.read().expect("snapshot lock").clone();
            let lag = probe_epoch.get() - snap.epoch() as i64;
            if lag > 0 {
                probe_lag.add(lag as u64);
            }
            let x = if i % 2 == 0 {
                snap.hit_time(v)
            } else {
                snap.hit_prob(v)
            };
            let end = Instant::now();
            let service = end.duration_since(dequeued);
            us.push(service.as_secs_f64() * 1e6);
            assert!(x.is_finite());
            service_probe_hist.record_duration(service);
            queue_probe_hist.record(0);
            probe_pinned.dec();
        }
        instr_p99_us = instr_p99_us.min(percentile_us(&us, 0.99));
    }
    assert_eq!(
        service_probe_hist.count() as usize,
        obs_queries * obs_reps,
        "every instrumented probe must be recorded"
    );
    let instrumentation_ratio = instr_p99_us / plain_p99_us.max(1e-9);
    record("point_p99_plain", plain_p99_us / 1e3, 1);
    record("point_p99_instrumented", instr_p99_us / 1e3, 1);

    // Cross-epoch answer stability over the same churn trace: per-epoch
    // seed-set Jaccard vs the previous epoch, seeds swapped, objective
    // drift — the telemetry the stability tracker feeds the serving layer.
    let mut stab_eng = StreamEngine::new(g.clone(), serve_cfg).expect("valid serve configuration");
    let mut tracker = rwd_obs::EpochStabilityTracker::new();
    let seeds_u32 =
        |eng: &StreamEngine| -> Vec<u32> { eng.seeds().iter().map(|s| s.raw()).collect() };
    tracker.observe(0, &seeds_u32(&stab_eng), stab_eng.objective(), None);
    for batch in &trace.batches {
        let rep = stab_eng.apply(batch).expect("trace batches are valid");
        tracker.observe(
            rep.epoch,
            &seeds_u32(&stab_eng),
            rep.maintain.objective,
            None,
        );
    }
    let stability = tracker.summary();
    eprintln!(
        "      metrics: instrumented point p99 {instr_p99_us:.2} µs vs plain \
         {plain_p99_us:.2} µs ({instrumentation_ratio:.3}x); stability over \
         {} epochs: Jaccard mean {:.3} min {:.3}, {} seeds swapped, \
         |objective drift| max {:.3}",
        trace.batches.len(),
        stability.mean_jaccard,
        stability.min_jaccard,
        stability.total_swapped,
        stability.max_abs_objective_drift,
    );

    // --- sharded engine core: scatter-gather vs the single-shard engine --
    // The same churn trace through 1/2/4-shard coordinators. Correctness is
    // asserted inline (seeds, objective and gathered point answers must be
    // bit-identical across shard counts); the rows feed the CI gate keeping
    // sharded point-query p99 within 2x of single-shard.
    let shard_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&s| s <= scale.r)
        .collect();
    struct ShardRow {
        shards: usize,
        apply_ms: f64,
        p50_us: f64,
        p99_us: f64,
    }
    let mut shard_rows: Vec<ShardRow> = Vec::new();
    let mut shard_baseline: Option<(Vec<NodeId>, u64, Vec<u64>)> = None;
    for &s in &shard_counts {
        let mut eng =
            StreamEngine::with_shards(g.clone(), serve_cfg, s).expect("valid shard count");
        let t0 = Instant::now();
        for batch in &trace.batches {
            eng.apply(batch).expect("trace batches are valid");
        }
        let shard_apply_ms = t0.elapsed().as_secs_f64() * 1e3;
        let snap = Snapshot::capture(&eng);
        let mut us: Vec<f64> = Vec::with_capacity(1000);
        let mut answers: Vec<u64> = Vec::with_capacity(1000);
        for i in 0..1000usize {
            let v = NodeId((i * 131 % scale.n) as u32);
            let t = Instant::now();
            let x = if i % 2 == 0 {
                snap.hit_time(v)
            } else {
                snap.hit_prob(v)
            };
            us.push(t.elapsed().as_secs_f64() * 1e6);
            answers.push(x.to_bits());
        }
        let (p50, p99) = (percentile_us(&us, 0.50), percentile_us(&us, 0.99));
        match &shard_baseline {
            None => {
                shard_baseline = Some((eng.seeds().to_vec(), eng.objective().to_bits(), answers))
            }
            Some((seeds, obj, base_answers)) => {
                assert_eq!(eng.seeds(), &seeds[..], "{s}-shard seeds drifted");
                assert_eq!(
                    eng.objective().to_bits(),
                    *obj,
                    "{s}-shard objective drifted"
                );
                assert_eq!(&answers, base_answers, "{s}-shard point answers drifted");
            }
        }
        shard_rows.push(ShardRow {
            shards: s,
            apply_ms: shard_apply_ms,
            p50_us: p50,
            p99_us: p99,
        });
    }
    let shard_base_p99 = shard_rows[0].p99_us;
    let shard_worst_p99 = shard_rows.iter().map(|r| r.p99_us).fold(0.0f64, f64::max);
    eprintln!(
        "      shard: counts {shard_counts:?} all bit-identical over {} batches; \
         single-shard service p99 {shard_base_p99:.1} µs, worst sharded p99 \
         {shard_worst_p99:.1} µs",
        scale.stream_batches,
    );

    // --- cross-epoch seed repair: warm absorb-and-replay vs forced cold --
    // A low-churn scale-free trace through two engines that differ only in
    // the maintainer's crossover: the warm engine persists its gain tables
    // across epochs (absorbing each refresh's posting-edit script and
    // replaying still-valid recorded rounds from their logs), the cold
    // engine rebuilds the gain engine from scratch every batch. Results
    // are asserted bit-identical — the warm path buys wall time only.
    //
    // The trace is deliberately *not* the refresh-stress trace above: warm
    // repair targets the steady state (a handful of edits per batch, not
    // one that rewrites a double-digit percentage of this small index),
    // and it is measured on the paper's hub-dominated topology, where
    // greedy rounds are expensive to stream (hub posting lists) yet the
    // argmax prefix is stable under churn — exactly what log replay
    // converts into O(log) work. A homogeneous graph is the wrong fixture
    // here for the same reason it is the right one above: its near-tied
    // gain profile reorders under any churn, forcing genuine (cold)
    // recomputation that no warm start can — or should — skip.
    let maintain_edits = (scale.stream_edits / 10).max(2);
    let maintain_spec = TemporalTraceSpec {
        model: TraceModel::BarabasiAlbert { mdeg: scale.mdeg },
        batch_edits: maintain_edits,
        batches: scale.stream_batches * 2,
        ..spec
    };
    let maintain_trace = temporal_trace(&maintain_spec).expect("valid trace spec");
    let mg = maintain_trace.base.clone();
    // k = 10 is the paper's real-data default (ICDE'14 §6). Deep seed
    // tails on a graph this small are near-tied and genuinely reorder
    // under churn; the steady-state prefix regime is what this fixture
    // measures, and the equivalence asserts below hold at any k.
    let maintain_cfg = StreamConfig { k: 10, ..serve_cfg };
    // The trace is stateful (each batch's cost depends on the previous
    // epoch), so best-of-reps wraps the *whole* trace: every rep rebuilds
    // both engines, replays all batches, and the warm and cold totals each
    // keep their own best rep — the same noise discipline `time_ms` gives
    // the stateless sections.
    let (mut warm_maintain_ms, mut cold_maintain_ms) = (f64::INFINITY, f64::INFINITY);
    let (mut warm_batches, mut replayed_total, mut absorbed_total) = (0usize, 0usize, 0usize);
    for _ in 0..reps {
        let mut warm_eng =
            StreamEngine::new(mg.clone(), maintain_cfg).expect("valid configuration");
        let mut cold_eng =
            StreamEngine::new(mg.clone(), maintain_cfg).expect("valid configuration");
        cold_eng.set_maintain_crossover(0.0);
        let (mut warm_ms, mut cold_ms) = (0.0f64, 0.0f64);
        (warm_batches, replayed_total, absorbed_total) = (0, 0, 0);
        for batch in &maintain_trace.batches {
            let rw = warm_eng.apply(batch).expect("trace batches are valid");
            let rc = cold_eng.apply(batch).expect("trace batches are valid");
            warm_ms += rw.maintain_ms;
            cold_ms += rc.maintain_ms;
            warm_batches += rw.maintain.warm as usize;
            replayed_total += rw.maintain.replayed_rounds;
            absorbed_total += rw.maintain.absorbed_postings;
            assert_eq!(
                rw.maintain.objective.to_bits(),
                rc.maintain.objective.to_bits(),
                "warm maintenance objective drifted from cold"
            );
            assert_eq!(
                rw.maintain.touched_postings, rc.maintain.touched_postings,
                "warm maintenance touched-posting accounting drifted from cold"
            );
        }
        assert_eq!(
            warm_eng.seeds(),
            cold_eng.seeds(),
            "warm maintenance seeds drifted from cold"
        );
        warm_maintain_ms = warm_maintain_ms.min(warm_ms);
        cold_maintain_ms = cold_maintain_ms.min(cold_ms);
    }
    let warm_speedup = cold_maintain_ms / warm_maintain_ms.max(1e-9);
    record("maintain_cold_total", cold_maintain_ms, layer_threads);
    record("maintain_warm_total", warm_maintain_ms, layer_threads);
    eprintln!(
        "      maintain: {} batches × {maintain_edits} edits; {warm_batches} warm, \
         {replayed_total} rounds replayed from logs, {absorbed_total} net postings \
         absorbed; warm {warm_maintain_ms:.3} ms vs cold {cold_maintain_ms:.3} ms \
         ({warm_speedup:.2}x)",
        maintain_trace.batches.len(),
    );

    // --- durability: journal overhead, snapshot write, recovery vs rebuild
    // Three costs of the durable layer: (a) the per-batch write-ahead
    // journal tax — the same churn trace through a plain engine vs one
    // bound to a data dir (fsync'd append before any shard commits);
    // (b) one full engine snapshot write; (c) crash recovery (latest
    // snapshot + journal-suffix replay) vs a from-scratch rebuild on the
    // final graph, asserted bit-identical — the ratio feeds the CI gate.
    use rwd_stream::{DurabilityConfig, DurableEngine};
    let durability_root =
        std::env::temp_dir().join(format!("rwd-perf-durability-{}", std::process::id()));
    std::fs::remove_dir_all(&durability_root).ok();

    let mut plain_apply_total = f64::INFINITY;
    for _ in 0..reps {
        let mut eng = StreamEngine::new(g.clone(), serve_cfg).expect("valid configuration");
        let t0 = Instant::now();
        for b in &trace.batches {
            eng.apply(b).expect("trace batches are valid");
        }
        plain_apply_total = plain_apply_total.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mut journaled_apply_total = f64::INFINITY;
    let mut wal_engine = None;
    for rep in 0..reps {
        let dir = durability_root.join(format!("wal-{rep}"));
        let eng = StreamEngine::new(g.clone(), serve_cfg).expect("valid configuration");
        let mut durable = DurableEngine::create(eng, &dir, DurabilityConfig { snapshot_every: 0 })
            .expect("fresh data dir");
        let t0 = Instant::now();
        for b in &trace.batches {
            durable.apply(b).expect("trace batches are valid");
        }
        journaled_apply_total = journaled_apply_total.min(t0.elapsed().as_secs_f64() * 1e3);
        wal_engine = Some(durable);
    }
    let journal_overhead_per_batch =
        (journaled_apply_total - plain_apply_total) / scale.stream_batches.max(1) as f64;
    record("stream_apply_plain_total", plain_apply_total, cores);
    record("stream_apply_journaled_total", journaled_apply_total, cores);

    let mut wal_engine = wal_engine.expect("reps >= 1");
    let (snapshot_write_ms, snapshot_epoch) =
        time_ms(reps, || wal_engine.snapshot_now().expect("snapshot writes"));
    record("snapshot_write", snapshot_write_ms, 1);
    drop(wal_engine);

    // A crash-shaped data dir, in the regime durability pays off in: a
    // sparse *weighted* graph at a long walk length. Rebuilding from
    // scratch re-samples every (src, layer) walk — L cumulative-weight
    // neighbor draws per walk, most of which revisit already-hit nodes and
    // add no posting — while recovery deserializes exactly the surviving
    // postings. The snapshot cadence divides the trace, so the crash lands
    // on a compaction boundary (empty journal suffix) — the steady state a
    // cadence-driven deployment crashes in; suffix-replay *exactness* is
    // the recovery proptests' job, and per-epoch replay cost is the stream
    // section's `incremental_refresh` line. Both sides run the same
    // single-thread engine config, so the ratio compares work done, not
    // scheduler luck (snapshot load honours the engine's thread budget).
    let durability_spec = TemporalTraceSpec {
        model: TraceModel::ErdosRenyi { mean_degree: 4.0 },
        nodes: scale.n,
        batches: scale.stream_batches,
        batch_edits: scale.stream_edits,
        delete_fraction: 0.5,
        seed: GRAPH_SEED,
    };
    let durability_l = 6 * scale.l;
    let durability_cfg = StreamConfig {
        l: durability_l,
        r: scale.r,
        k: scale.k,
        seed: WALK_SEED,
        rule: GainRule::HittingTime,
        threads: 1,
    };
    let durability_trace = temporal_trace(&durability_spec).expect("valid trace spec");
    let durability_wg =
        weighted_twin(&durability_trace.base, GRAPH_SEED).expect("valid weighted twin");
    let recovery_dir = durability_root.join("recover");
    let crash_cadence = (scale.stream_batches as u64 / 2).max(1);
    let (live_seeds, live_objective) = {
        let eng = StreamEngine::new_weighted(durability_wg.clone(), durability_cfg)
            .expect("valid configuration");
        let mut durable = DurableEngine::create(
            eng,
            &recovery_dir,
            DurabilityConfig {
                snapshot_every: crash_cadence,
            },
        )
        .expect("fresh data dir");
        for b in &durability_trace.batches {
            durable.apply(b).expect("trace batches are valid");
        }
        (
            durable.engine().seeds().to_vec(),
            durable.engine().objective().to_bits(),
        )
    };
    let mut recovery_ms = f64::INFINITY;
    let mut recovered = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let opened =
            DurableEngine::open(&recovery_dir, DurabilityConfig::default()).expect("recovers");
        recovery_ms = recovery_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        recovered = Some(opened);
    }
    let (recovered, recovery_report) = recovered.expect("reps >= 1");
    assert!(
        recovery_report.torn_tail.is_none(),
        "clean shutdown misread as torn"
    );
    let final_graph = recovered
        .engine()
        .weighted_graph()
        .expect("weighted engine")
        .clone();
    let mut durability_rebuild_ms = f64::INFINITY;
    let mut cold = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let eng = StreamEngine::new_weighted(final_graph.clone(), durability_cfg)
            .expect("valid configuration");
        durability_rebuild_ms = durability_rebuild_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        cold = Some(eng);
    }
    let cold = cold.expect("reps >= 1");
    assert_eq!(
        recovered.engine().seeds(),
        cold.seeds(),
        "recovered seeds must equal a from-scratch rebuild"
    );
    assert_eq!(
        recovered.engine().objective().to_bits(),
        cold.objective().to_bits(),
        "recovered objective must equal a from-scratch rebuild"
    );
    assert_eq!(
        recovered.engine().seeds(),
        &live_seeds[..],
        "recovered seeds must equal the live engine's"
    );
    assert_eq!(
        recovered.engine().objective().to_bits(),
        live_objective,
        "recovered objective must equal the live engine's"
    );
    let recovery_speedup = durability_rebuild_ms / recovery_ms.max(1e-9);
    record("recovery", recovery_ms, cores);
    record("recovery_cold_rebuild", durability_rebuild_ms, cores);
    eprintln!(
        "      durability: journal overhead {journal_overhead_per_batch:.3} ms/batch \
         (plain {plain_apply_total:.1} ms vs journaled {journaled_apply_total:.1} ms \
         over {} batches); snapshot write {snapshot_write_ms:.1} ms at epoch \
         {snapshot_epoch}; recovery {recovery_ms:.1} ms (snapshot epoch {}, {} \
         epochs replayed) vs rebuild {durability_rebuild_ms:.1} ms \
         ({recovery_speedup:.2}x)",
        scale.stream_batches, recovery_report.snapshot_epoch, recovery_report.epochs_replayed,
    );
    drop(recovered);

    // --- open path: mmap open vs deserialize open vs rebuild -------------
    // How fast a saved index comes back. Three ways to the same bits
    // (asserted): `open_mapped` maps the RWDIDX4 file and validates the
    // CRC once — no per-posting parse; `load` streams and deserializes
    // every column to the heap; a rebuild re-samples every walk. The
    // mapped-vs-deserialize ratio feeds the CI gate; the heap/mapped byte
    // split plus the deserializer's transient peak is the RSS story the
    // storage tests assert (peak ≤ 1.25x the final index).
    let mapped_available = cfg!(unix) && cfg!(target_endian = "little");
    let open_dir = durability_root.join("open");
    std::fs::create_dir_all(&open_dir).expect("fresh open dir");
    let index_path = open_dir.join("index.rwdidx");
    idx.save_v4(&index_path).expect("index snapshot writes");
    let index_file_bytes = std::fs::metadata(&index_path)
        .expect("snapshot exists")
        .len();

    let (deser_open_ms, (loaded, load_stats)) = time_ms(reps, || {
        WalkIndex::load_with_stats(&index_path, 0).expect("index snapshot loads")
    });
    assert_eq!(loaded, idx, "deserialize open drifted from the saved index");
    record("index_open_deserialize", deser_open_ms, cores);
    let load_peak_ratio =
        (idx.memory_bytes() + load_stats.transient_peak_bytes) as f64 / idx.memory_bytes() as f64;

    let (mapped_open_ms, mapped_heap, mapped_bytes) = if mapped_available {
        let (ms, mapped) = time_ms(reps, || {
            WalkIndex::open_mapped(&index_path).expect("index snapshot maps")
        });
        assert_eq!(mapped, idx, "mapped open drifted from the saved index");
        record("index_open_mapped", ms, 1);
        (ms, mapped.heap_bytes(), mapped.mapped_bytes())
    } else {
        (f64::NAN, 0, 0)
    };
    let mapped_vs_deserialize = deser_open_ms / mapped_open_ms.max(1e-9);
    let mapped_vs_rebuild = uw_all / mapped_open_ms.max(1e-9);

    // The restart drill end to end: DurableEngine::open in both modes on
    // the durability section's data dir, through the first answered point
    // query — time-to-first-answer after a process restart.
    use rwd_stream::OpenMode;
    let open_modes: &[(OpenMode, bool)] = &[
        (OpenMode::Mapped, mapped_available),
        (OpenMode::Deserialize, true),
    ];
    let mut engine_open_ms = [f64::NAN; 2];
    let mut ttfa_ms = [f64::NAN; 2];
    let mut first_bits: Option<(Vec<NodeId>, u64, u64)> = None;
    for (slot, &(mode, available)) in open_modes.iter().enumerate() {
        if !available {
            continue;
        }
        for _ in 0..reps {
            let t0 = Instant::now();
            let (eng, rep) =
                DurableEngine::open_with(&recovery_dir, DurabilityConfig::default(), mode)
                    .expect("recovers");
            let opened = t0.elapsed().as_secs_f64() * 1e3;
            let snap = Snapshot::capture(eng.engine());
            let first = snap.hit_time(NodeId(0));
            let ttfa = t0.elapsed().as_secs_f64() * 1e3;
            assert!(first.is_finite() || first.is_infinite());
            assert!(rep.torn_tail.is_none(), "clean dir misread as torn");
            engine_open_ms[slot] = engine_open_ms[slot].min(opened);
            ttfa_ms[slot] = ttfa_ms[slot].min(ttfa);
            let bits = (
                eng.engine().seeds().to_vec(),
                eng.engine().objective().to_bits(),
                first.to_bits(),
            );
            match &first_bits {
                None => first_bits = Some(bits),
                Some(base) => assert_eq!(&bits, base, "{mode:?} open drifted"),
            }
        }
    }
    eprintln!(
        "      open: {index_file_bytes} B index; mapped {} ms vs deserialize \
         {deser_open_ms:.3} ms ({mapped_vs_deserialize:.1}x) vs rebuild {uw_all:.3} ms; \
         {mapped_bytes} B mapped + {mapped_heap} B heap after mapped open; deserialize \
         peak {load_peak_ratio:.3}x final; engine restart TTFA mapped {} ms vs \
         deserialize {:.1} ms",
        fmt_ms(mapped_open_ms),
        fmt_ms(ttfa_ms[0]),
        ttfa_ms[1],
    );
    std::fs::remove_dir_all(&durability_root).ok();

    let unix_secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());

    let timing_lines: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    \"{}\": {{ \"ms\": {}, \"threads\": {} }}",
                t.name,
                fmt_ms(t.ms),
                t.threads
            )
        })
        .collect();
    let touched_json: Vec<String> = touched.iter().map(|t| t.to_string()).collect();
    let join = |v: &[usize]| {
        v.iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };

    let stability_epoch_lines: Vec<String> = tracker
        .history()
        .iter()
        .skip(1)
        .map(|rec| {
            format!(
                "        {{ \"epoch\": {}, \"jaccard\": {}, \"seeds_swapped\": {}, \
                 \"objective\": {}, \"objective_drift\": {} }}",
                rec.epoch,
                fmt_ms(rec.jaccard),
                rec.seeds_swapped,
                fmt_ms(rec.objective),
                fmt_ms(rec.objective_drift)
            )
        })
        .collect();

    let shard_row_lines: Vec<String> = shard_rows
        .iter()
        .map(|r| {
            format!(
                "      {{ \"shards\": {}, \"batch_apply_ms_total\": {}, \
                 \"point_service_p50_us\": {}, \"point_service_p99_us\": {} }}",
                r.shards,
                fmt_ms(r.apply_ms),
                fmt_ms(r.p50_us),
                fmt_ms(r.p99_us)
            )
        })
        .collect();

    let json = format!(
        r#"{{
  "schema": "rwd-perf/9",
  "pr": 10,
  "unix_secs": {unix_secs},
  "available_parallelism": {cores},
  "scale": "{scale_name}",
  "graph": {{ "model": "{model}", "n": {n}, "m": {m}, "mdeg": {mdeg}, "seed": {gseed} }},
  "params": {{ "l": {l}, "r": {r}, "k": {k}, "walk_seed": {wseed}, "reps": {reps} }},
  "index": {{ "total_postings": {postings}, "memory_bytes": {mem}, "views": 2 }},
  "timings": {{
{timings}
  }},
  "speedups": {{
    "unweighted_build_all_vs_1t": {uw_speedup},
    "weighted_build_all_vs_1t": {w_speedup},
    "delta_vs_celf_greedy": {delta_speedup},
    "incremental_vs_rebuild": {stream_speedup}
  }},
  "greedy_evaluations": {celf_evals},
  "greedy_delta": {{
    "evaluations": {delta_evals},
    "touched_postings_per_round": [{touched}],
    "index_postings": {postings}
  }},
  "stream": {{
    "batches": {stream_batches},
    "edits_per_batch": {stream_edits},
    "touched_nodes_per_batch": [{stream_touched}],
    "groups_resampled_per_batch": [{stream_groups}],
    "groups_total": {groups_total},
    "max_touched_fraction": {max_touched},
    "batch_apply_ms_total": {apply_ms_s},
    "incremental_refresh_ms_total": {refresh_ms_s},
    "full_rebuild_ms_total": {rebuild_ms_s}
  }},
  "serve": {{
    "query_workers": {query_workers},
    "queries_total": {serve_queries},
    "point_queries": {point_queries},
    "set_queries": {other_queries},
    "batches_applied_concurrently": {batches_applied},
    "throughput_qps": {throughput_qps_s},
    "point_p50_us": {p50_us_s},
    "point_p99_us": {p99_us_s},
    "point_max_us": {max_us_s},
    "point_service_p99_us": {service_p99_us_s},
    "full_sweep_ms": {full_sweep_ms_s}
  }},
  "shard": {{
    "counts": [{shard_counts_s}],
    "trace_batches": {stream_batches},
    "rows": [
{shard_rows_s}
    ],
    "single_shard_point_service_p99_us": {shard_base_p99_s},
    "max_sharded_point_service_p99_us": {shard_worst_p99_s}
  }},
  "maintain": {{
    "trace_batches": {maintain_batches},
    "edits_per_batch": {maintain_edits},
    "k": {maintain_k},
    "warm_batches": {warm_batches},
    "replayed_rounds_total": {replayed_total},
    "absorbed_postings_total": {absorbed_total},
    "cold_maintain_ms_total": {cold_maintain_ms_s},
    "warm_maintain_ms_total": {warm_maintain_ms_s},
    "warm_vs_cold": {warm_speedup_s}
  }},
  "durability": {{
    "trace_batches": {stream_batches},
    "plain_apply_ms_total": {plain_apply_s},
    "journaled_apply_ms_total": {journaled_apply_s},
    "journal_overhead_ms_per_batch": {journal_overhead_s},
    "snapshot_write_ms": {snapshot_write_s},
    "snapshot_epoch": {snapshot_epoch},
    "recovery_trace": {{ "model": "erdos_renyi_gnp", "n": {n}, "mean_degree": 4.0,
                        "weighted": true, "l": {durability_l}, "r": {r}, "threads": 1 }},
    "recovery_snapshot_epoch": {recovery_snap_epoch},
    "recovery_epochs_replayed": {recovery_replayed},
    "recovery_ms": {recovery_ms_s},
    "rebuild_ms": {durability_rebuild_s},
    "recovery_vs_rebuild": {recovery_speedup_s}
  }},
  "open": {{
    "mapped_available": {mapped_available},
    "index_file_bytes": {index_file_bytes},
    "index_memory_bytes": {mem},
    "mapped_open_ms": {mapped_open_s},
    "deserialize_open_ms": {deser_open_s},
    "rebuild_ms": {rebuild_open_s},
    "mapped_vs_deserialize": {mapped_vs_deser_s},
    "mapped_vs_rebuild": {mapped_vs_rebuild_s},
    "mapped_bytes_after_open": {mapped_bytes},
    "heap_bytes_after_open": {mapped_heap},
    "deserialize_transient_peak_bytes": {load_peak_bytes},
    "deserialize_peak_vs_final": {load_peak_ratio_s},
    "engine_open_mapped_ms": {engine_open_mapped_s},
    "engine_open_deserialize_ms": {engine_open_deser_s},
    "ttfa_mapped_ms": {ttfa_mapped_s},
    "ttfa_deserialize_ms": {ttfa_deser_s}
  }},
  "metrics": {{
    "probe_queries": {obs_queries},
    "point_p99_plain_us": {plain_p99_s},
    "point_p99_instrumented_us": {instr_p99_s},
    "instrumentation_overhead_ratio": {instr_ratio_s},
    "stability": {{
      "epochs": {stab_epochs},
      "mean_jaccard": {stab_mean_jac},
      "min_jaccard": {stab_min_jac},
      "total_seeds_swapped": {stab_swapped},
      "mean_abs_objective_drift": {stab_mean_drift},
      "max_abs_objective_drift": {stab_max_drift},
      "per_epoch": [
{stab_epoch_rows}
      ]
    }}
  }}
}}
"#,
        scale_name = scale.name,
        model = scale.model.json_name(),
        n = g.n(),
        m = g.m(),
        mdeg = scale.mdeg,
        gseed = GRAPH_SEED,
        l = scale.l,
        r = scale.r,
        k = scale.k,
        wseed = WALK_SEED,
        postings = idx.total_postings(),
        mem = idx.memory_bytes(),
        timings = timing_lines.join(",\n"),
        uw_speedup = fmt_ms(uw_1t / uw_all.max(1e-9)),
        w_speedup = fmt_ms(w_1t / w_all.max(1e-9)),
        delta_speedup = fmt_ms(celf_ms / delta_ms.max(1e-9)),
        stream_speedup = fmt_ms(rebuild_ms / refresh_ms.max(1e-9)),
        celf_evals = celf.evaluations,
        delta_evals = delta.evaluations,
        touched = touched_json.join(", "),
        stream_batches = scale.stream_batches,
        stream_edits = scale.stream_edits,
        stream_touched = join(&touched_per_batch),
        stream_groups = join(&groups_per_batch),
        max_touched = fmt_ms(max_touched_fraction),
        apply_ms_s = fmt_ms(apply_ms),
        refresh_ms_s = fmt_ms(refresh_ms),
        rebuild_ms_s = fmt_ms(rebuild_ms),
        point_queries = point_us.len(),
        throughput_qps_s = fmt_ms(throughput_qps),
        p50_us_s = fmt_ms(p50_us),
        p99_us_s = fmt_ms(p99_us),
        max_us_s = fmt_ms(max_us),
        service_p99_us_s = fmt_ms(service_p99_us),
        full_sweep_ms_s = fmt_ms(full_sweep_ms),
        shard_counts_s = join(&shard_counts),
        shard_rows_s = shard_row_lines.join(",\n"),
        shard_base_p99_s = fmt_ms(shard_base_p99),
        shard_worst_p99_s = fmt_ms(shard_worst_p99),
        maintain_batches = maintain_trace.batches.len(),
        maintain_k = maintain_cfg.k,
        cold_maintain_ms_s = fmt_ms(cold_maintain_ms),
        warm_maintain_ms_s = fmt_ms(warm_maintain_ms),
        warm_speedup_s = fmt_ms(warm_speedup),
        plain_apply_s = fmt_ms(plain_apply_total),
        journaled_apply_s = fmt_ms(journaled_apply_total),
        journal_overhead_s = fmt_ms(journal_overhead_per_batch),
        snapshot_write_s = fmt_ms(snapshot_write_ms),
        recovery_snap_epoch = recovery_report.snapshot_epoch,
        recovery_replayed = recovery_report.epochs_replayed,
        recovery_ms_s = fmt_ms(recovery_ms),
        durability_rebuild_s = fmt_ms(durability_rebuild_ms),
        recovery_speedup_s = fmt_ms(recovery_speedup),
        mapped_open_s = json_num(mapped_open_ms),
        deser_open_s = fmt_ms(deser_open_ms),
        rebuild_open_s = fmt_ms(uw_all),
        mapped_vs_deser_s = json_num(mapped_vs_deserialize),
        mapped_vs_rebuild_s = json_num(mapped_vs_rebuild),
        load_peak_bytes = load_stats.transient_peak_bytes,
        load_peak_ratio_s = fmt_ms(load_peak_ratio),
        engine_open_mapped_s = json_num(engine_open_ms[0]),
        engine_open_deser_s = json_num(engine_open_ms[1]),
        ttfa_mapped_s = json_num(ttfa_ms[0]),
        ttfa_deser_s = json_num(ttfa_ms[1]),
        plain_p99_s = fmt_ms(plain_p99_us),
        instr_p99_s = fmt_ms(instr_p99_us),
        instr_ratio_s = fmt_ms(instrumentation_ratio),
        stab_epochs = stability.epochs,
        stab_mean_jac = fmt_ms(stability.mean_jaccard),
        stab_min_jac = fmt_ms(stability.min_jaccard),
        stab_swapped = stability.total_swapped,
        stab_mean_drift = fmt_ms(stability.mean_abs_objective_drift),
        stab_max_drift = fmt_ms(stability.max_abs_objective_drift),
        stab_epoch_rows = stability_epoch_lines.join(",\n"),
    );
    std::fs::write(&out_path, json).expect("write perf snapshot");
    eprintln!("perf: wrote {out_path}");
}
