//! Shared fixtures for the Criterion benches and the `repro` harness.

#![warn(missing_docs)]

pub mod experiments;

use rwd_graph::generators::barabasi_albert;
use rwd_graph::CsrGraph;

/// The paper's synthetic evaluation graph (§4.2, Figs. 2–5): a power-law
/// random graph with 1,000 nodes and ≈10k edges.
pub fn paper_synthetic() -> CsrGraph {
    barabasi_albert(1_000, 10, 0x2013).expect("valid parameters")
}

/// A smaller graph for microbenches that sweep many configurations.
pub fn small_synthetic() -> CsrGraph {
    barabasi_albert(300, 5, 0x2013).expect("valid parameters")
}

/// Default output directory for repro TSVs.
pub const RESULTS_DIR: &str = "results";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_have_expected_scale() {
        let g = paper_synthetic();
        assert_eq!(g.n(), 1_000);
        assert!((9_000..10_500).contains(&g.m()), "m = {}", g.m());
        assert!(small_synthetic().n() == 300);
    }
}
