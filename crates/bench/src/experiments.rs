//! One function per paper table/figure. Each prints the same rows/series
//! the paper reports and writes a TSV under `results/`.
//!
//! Scale discipline: the default configuration finishes on a laptop-class
//! machine in minutes; `--full` switches every experiment to the paper's
//! exact sizes (the Fig. 9 full series needs ≈6 GB for the walk index of
//! the 1M-node graph, as the paper's own `O(nRL)` analysis predicts).

use std::time::Instant;

use rwd_core::algo::{ApproxGreedy, DpGreedy};
use rwd_core::baselines;
use rwd_core::metrics::{self, MetricParams};
use rwd_core::problem::{Params, Problem, Selection};
use rwd_core::report::{fmt_f, Table};
use rwd_core::Strategy;
use rwd_datasets::{scalability_graph, Dataset};
use rwd_graph::{CsrGraph, NodeId};
use rwd_walks::WalkIndex;

use crate::paper_synthetic;

/// Global experiment options.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Use the paper's full dataset scales.
    pub full: bool,
}

impl Options {
    /// Dataset scale for the four SNAP stand-ins (Figs. 6–8, 10).
    fn dataset_scale(&self, d: Dataset) -> f64 {
        if self.full {
            return 1.0;
        }
        match d {
            Dataset::CaGrQc => 1.0,     // 5.2k nodes — already small
            Dataset::CaHepPh => 0.5,    // 6k nodes
            Dataset::Brightkite => 0.1, // 5.8k nodes
            Dataset::Epinions => 0.1,   // 7.6k nodes
        }
    }

    /// Scale for the Fig. 9 scalability series.
    fn scalability_scale(&self) -> f64 {
        if self.full {
            1.0
        } else {
            0.1
        }
    }
}

fn save(table: &Table, name: &str) {
    let path = format!("{}/{name}.tsv", crate::RESULTS_DIR);
    if let Err(e) = table.write_tsv(&path) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("[saved {path}]");
    }
}

fn dataset_graph(d: Dataset, opts: Options) -> CsrGraph {
    d.synthetic_connected(opts.dataset_scale(d))
        .expect("dataset generation")
}

fn eval(g: &CsrGraph, sel: &[NodeId], l: u32) -> metrics::Metrics {
    metrics::evaluate(
        g,
        sel,
        MetricParams {
            l,
            r: 500,
            seed: 0xE7A1_5EED,
        },
    )
}

/// Table 1: the Example 3.1 inverted index (exact paper values).
pub fn table1(_opts: Options) {
    println!("== Table 1: inverted index of Example 3.1 (R = 1, L = 2) ==\n");
    let v = |i: usize| rwd_graph::generators::paper_example::v(i);
    let walks: Vec<Vec<NodeId>> = [
        [1usize, 2, 3],
        [2, 3, 5],
        [3, 2, 5],
        [4, 7, 5],
        [5, 2, 6],
        [6, 7, 5],
        [7, 5, 7],
        [8, 7, 4],
    ]
    .iter()
    .map(|w| w.iter().map(|&x| v(x)).collect())
    .collect();
    let idx = WalkIndex::from_walks(8, 2, &walks);

    let mut t = Table::new(["node", "postings <id, weight>"]);
    for owner in 1..=8 {
        let entries: Vec<String> = idx
            .postings(0, v(owner))
            .iter()
            .map(|p| format!("<v{}, {}>", p.id.index() + 1, p.weight))
            .collect();
        t.row([format!("v{owner}"), entries.join(", ")]);
    }
    println!("{}", t.render());
    save(&t, "table1");
}

/// Table 2: dataset summary (published vs generated stand-ins).
pub fn table2(opts: Options) {
    println!("== Table 2: datasets (published vs synthetic stand-in) ==\n");
    let mut t = Table::new([
        "name",
        "paper n",
        "paper m",
        "standin n",
        "standin m",
        "scale",
    ]);
    for d in Dataset::all() {
        let spec = d.spec();
        let scale = opts.dataset_scale(d);
        let g = d.synthetic(scale).expect("generation");
        t.row([
            spec.name.to_string(),
            spec.nodes.to_string(),
            spec.edges.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{scale}"),
        ]);
    }
    println!("{}", t.render());
    save(&t, "table2");
}

/// Shared machinery for Figs. 2 and 3: DP greedy vs approximate greedy
/// effectiveness as a function of R.
fn fig23(problem: Problem, name: &str) {
    let g = paper_synthetic();
    let k = 30;
    println!(
        "== {name}: DP{suffix} vs Approx{suffix} on power-law n = {}, m = {}, k = {k} ==\n",
        g.n(),
        g.m(),
        suffix = problem.suffix()
    );
    let mut t = Table::new(["L", "R", "AHT(DP)", "AHT(Approx)", "EHN(DP)", "EHN(Approx)"]);
    for l in [5u32, 10] {
        let dp = DpGreedy::new(
            problem,
            Params {
                k,
                l,
                r: 1,
                seed: 7,
                ..Params::default()
            },
        )
        .run(&g)
        .expect("dp greedy");
        let dp_m = eval(&g, &dp.nodes, l);
        for r in [50usize, 100, 150, 200, 250] {
            let ap = ApproxGreedy::new(
                problem,
                Params {
                    k,
                    l,
                    r,
                    seed: 7,
                    ..Params::default()
                },
            )
            .run(&g)
            .expect("approx greedy");
            let ap_m = eval(&g, &ap.nodes, l);
            t.row([
                l.to_string(),
                r.to_string(),
                fmt_f(dp_m.aht, 4),
                fmt_f(ap_m.aht, 4),
                fmt_f(dp_m.ehn, 1),
                fmt_f(ap_m.ehn, 1),
            ]);
        }
    }
    println!("{}", t.render());
    save(&t, name);
}

/// Fig. 2: effectiveness of DPF1 vs ApproxF1 (AHT and EHN vs R).
pub fn fig2(_opts: Options) {
    fig23(Problem::MinHittingTime, "fig2");
}

/// Fig. 3: effectiveness of DPF2 vs ApproxF2.
pub fn fig3(_opts: Options) {
    fig23(Problem::MaxCoverage, "fig3");
}

/// Fig. 4: running time of the DP greedy vs the approximate greedy.
///
/// The DP solvers run in the paper's plain (non-lazy) mode here — that is
/// the configuration whose cost the paper reports; a CELF column is added
/// as a bonus ablation.
pub fn fig4(_opts: Options) {
    let g = paper_synthetic();
    let k = 30;
    let r = 250;
    println!(
        "== Fig 4: running time (s), k = {k}, R = {r}, n = {}, m = {} ==\n",
        g.n(),
        g.m()
    );
    let mut t = Table::new(["L", "algorithm", "seconds (plain)", "seconds (CELF)"]);
    for l in [5u32, 10] {
        for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
            let plain = DpGreedy::new(
                problem,
                Params {
                    k,
                    l,
                    r: 1,
                    seed: 7,
                    strategy: Strategy::Sweep,
                    ..Params::default()
                },
            )
            .run(&g)
            .expect("dp plain");
            let lazy = DpGreedy::new(
                problem,
                Params {
                    k,
                    l,
                    r: 1,
                    seed: 7,
                    strategy: Strategy::Celf,
                    ..Params::default()
                },
            )
            .run(&g)
            .expect("dp lazy");
            t.row([
                l.to_string(),
                format!("DP{}", problem.suffix()),
                fmt_f(plain.elapsed.as_secs_f64(), 3),
                fmt_f(lazy.elapsed.as_secs_f64(), 3),
            ]);
        }
        for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
            let sweep = ApproxGreedy::new(
                problem,
                Params {
                    k,
                    l,
                    r,
                    seed: 7,
                    strategy: Strategy::Sweep,
                    ..Params::default()
                },
            )
            .run(&g)
            .expect("approx sweep");
            let lazy = ApproxGreedy::new(
                problem,
                Params {
                    k,
                    l,
                    r,
                    seed: 7,
                    strategy: Strategy::Celf,
                    ..Params::default()
                },
            )
            .run(&g)
            .expect("approx lazy");
            t.row([
                l.to_string(),
                format!("Approx{}", problem.suffix()),
                fmt_f(sweep.elapsed.as_secs_f64(), 3),
                fmt_f(lazy.elapsed.as_secs_f64(), 3),
            ]);
        }
    }
    println!("{}", t.render());
    save(&t, "fig4");
}

/// Fig. 5: approximate-greedy running time as a function of R (linear).
pub fn fig5(_opts: Options) {
    let g = paper_synthetic();
    let k = 30;
    println!("== Fig 5: Approx running time vs R (k = {k}) ==\n");
    let mut t = Table::new(["L", "R", "ApproxF1 (s)", "ApproxF2 (s)"]);
    for l in [5u32, 10] {
        for r in [50usize, 100, 150, 200, 250] {
            let p = Params {
                k,
                l,
                r,
                seed: 7,
                strategy: Strategy::Sweep,
                ..Params::default()
            };
            let a1 = ApproxGreedy::new(Problem::MinHittingTime, p)
                .run(&g)
                .expect("f1");
            let a2 = ApproxGreedy::new(Problem::MaxCoverage, p)
                .run(&g)
                .expect("f2");
            t.row([
                l.to_string(),
                r.to_string(),
                fmt_f(a1.elapsed.as_secs_f64(), 4),
                fmt_f(a2.elapsed.as_secs_f64(), 4),
            ]);
        }
    }
    println!("{}", t.render());
    save(&t, "fig5");
}

/// The four algorithms of Figs. 6–8.
fn four_algorithms(g: &CsrGraph, k: usize, l: u32) -> Vec<Selection> {
    let p = Params {
        k,
        l,
        r: 100,
        seed: 7,
        ..Params::default()
    };
    vec![
        baselines::degree_top_k(g, k).expect("degree"),
        baselines::dominate_greedy(g, k).expect("dominate"),
        ApproxGreedy::new(Problem::MinHittingTime, p)
            .run(g)
            .expect("approx f1"),
        ApproxGreedy::new(Problem::MaxCoverage, p)
            .run(g)
            .expect("approx f2"),
    ]
}

/// Shared machinery for Figs. 6 and 7: metric vs k on the four datasets.
fn fig67(metric: &str, name: &str, opts: Options) {
    let l = 6;
    println!("== {name}: {metric} vs k on the four datasets (L = {l}, R = 100) ==\n");
    let mut t = Table::new(["dataset", "k", "Degree", "Dominate", "ApproxF1", "ApproxF2"]);
    for d in Dataset::all() {
        let g = dataset_graph(d, opts);
        eprintln!("  [{}] n = {}, m = {}", d.spec().name, g.n(), g.m());
        for k in [20usize, 40, 60, 80, 100] {
            let sels = four_algorithms(&g, k, l);
            let mut row = vec![d.spec().name.to_string(), k.to_string()];
            for sel in &sels {
                let m = eval(&g, &sel.nodes, l);
                let value = if metric == "AHT" { m.aht } else { m.ehn };
                row.push(fmt_f(value, if metric == "AHT" { 4 } else { 1 }));
            }
            t.row(row);
        }
    }
    println!("{}", t.render());
    save(&t, name);
}

/// Fig. 6: AHT vs k for Degree/Dominate/ApproxF1/ApproxF2.
pub fn fig6(opts: Options) {
    fig67("AHT", "fig6", opts);
}

/// Fig. 7: EHN vs k.
pub fn fig7(opts: Options) {
    fig67("EHN", "fig7", opts);
}

/// Fig. 8: running time vs k (L = 6) and vs L (k = 100) on Epinions.
pub fn fig8(opts: Options) {
    let g = dataset_graph(Dataset::Epinions, opts);
    println!(
        "== Fig 8: running time on Epinions stand-in (n = {}, m = {}) ==\n",
        g.n(),
        g.m()
    );
    let mut t = Table::new(["sweep", "x", "Degree", "Dominate", "ApproxF1", "ApproxF2"]);
    for k in [20usize, 40, 60, 80, 100] {
        let sels = four_algorithms(&g, k, 6);
        let mut row = vec!["k (L=6)".to_string(), k.to_string()];
        for sel in &sels {
            row.push(fmt_f(sel.elapsed.as_secs_f64(), 3));
        }
        t.row(row);
    }
    for l in [2u32, 4, 6, 8, 10] {
        let sels = four_algorithms(&g, 100, l);
        let mut row = vec!["L (k=100)".to_string(), l.to_string()];
        for sel in &sels {
            row.push(fmt_f(sel.elapsed.as_secs_f64(), 3));
        }
        t.row(row);
    }
    println!("{}", t.render());
    save(&t, "fig8");
}

/// Fig. 9: scalability of the approximate greedy over the G_1..G_10 series.
pub fn fig9(opts: Options) {
    let scale = opts.scalability_scale();
    println!("== Fig 9: scalability, BA series at scale {scale} (k = 100, L = 6, R = 100) ==\n");
    let mut t = Table::new(["i", "nodes", "edges", "ApproxF1 (s)", "ApproxF2 (s)"]);
    for i in 1..=10 {
        let build_start = Instant::now();
        let g = scalability_graph(i, scale).expect("scalability graph");
        let gen_time = build_start.elapsed();
        let p = Params {
            k: 100,
            l: 6,
            r: 100,
            seed: 7,
            strategy: Strategy::Celf,
            ..Params::default()
        };
        let a1 = ApproxGreedy::new(Problem::MinHittingTime, p)
            .run(&g)
            .expect("f1");
        let a2 = ApproxGreedy::new(Problem::MaxCoverage, p)
            .run(&g)
            .expect("f2");
        t.row([
            i.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            fmt_f(a1.elapsed.as_secs_f64(), 3),
            fmt_f(a2.elapsed.as_secs_f64(), 3),
        ]);
        eprintln!(
            "  [G_{i}] n = {} built in {:.1}s, F1 {:.1}s, F2 {:.1}s",
            g.n(),
            gen_time.as_secs_f64(),
            a1.elapsed.as_secs_f64(),
            a2.elapsed.as_secs_f64()
        );
    }
    println!("{}", t.render());
    save(&t, "fig9");
}

/// Fig. 10: effect of L on AHT and EHN (CAGrQc and CAHepPh, k = 60).
pub fn fig10(opts: Options) {
    let k = 60;
    println!("== Fig 10: effect of L (k = {k}, R = 100) ==\n");
    let mut t = Table::new([
        "dataset", "L", "metric", "Degree", "Dominate", "ApproxF1", "ApproxF2",
    ]);
    for d in [Dataset::CaGrQc, Dataset::CaHepPh] {
        let g = dataset_graph(d, opts);
        for l in [2u32, 4, 6, 8, 10] {
            let sels = four_algorithms(&g, k, l);
            let ms: Vec<metrics::Metrics> = sels.iter().map(|s| eval(&g, &s.nodes, l)).collect();
            let mut aht_row = vec![d.spec().name.to_string(), l.to_string(), "AHT".into()];
            let mut ehn_row = vec![d.spec().name.to_string(), l.to_string(), "EHN".into()];
            for m in &ms {
                aht_row.push(fmt_f(m.aht, 4));
                ehn_row.push(fmt_f(m.ehn, 1));
            }
            t.row(aht_row);
            t.row(ehn_row);
        }
    }
    println!("{}", t.render());
    save(&t, "fig10");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scales_are_laptop_sized() {
        let opts = Options { full: false };
        for d in Dataset::all() {
            let g = dataset_graph(d, opts);
            assert!(g.n() <= 13_000, "{}: n = {}", d.spec().name, g.n());
        }
        assert!(Options { full: true }.dataset_scale(Dataset::Epinions) == 1.0);
        assert_eq!(opts.scalability_scale(), 0.1);
    }

    #[test]
    fn table_experiments_run_clean() {
        // Smoke: the cheap experiments must complete and write TSVs.
        let opts = Options { full: false };
        table1(opts);
        table2(opts);
        assert!(std::path::Path::new("results/table1.tsv").exists());
        assert!(std::path::Path::new("results/table2.tsv").exists());
    }

    #[test]
    fn four_algorithms_return_distinct_labels() {
        let g = crate::small_synthetic();
        let sels = four_algorithms(&g, 5, 4);
        let labels: Vec<&str> = sels.iter().map(|s| s.algorithm.as_str()).collect();
        assert_eq!(labels, vec!["Degree", "Dominate", "ApproxF1", "ApproxF2"]);
        for sel in &sels {
            assert_eq!(sel.nodes.len(), 5);
        }
    }
}
