//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all            # everything at default (laptop) scale
//! repro fig6 fig7      # selected experiments
//! repro fig9 --full    # paper-scale datasets (needs several GB of RAM)
//! ```
//!
//! Output: aligned tables on stdout plus TSVs under `results/`. The
//! paper-vs-measured comparison for each experiment is recorded in
//! `EXPERIMENTS.md`.

use std::process::ExitCode;

use rwd_bench::experiments::{self, Options};

const USAGE: &str = "\
repro — regenerate the tables and figures of
  'Random-walk domination in large graphs' (ICDE 2014)

USAGE: repro <experiment>... [--full]

EXPERIMENTS:
  table1   inverted index of Example 3.1
  table2   dataset summary
  fig2     DPF1 vs ApproxF1 effectiveness vs R
  fig3     DPF2 vs ApproxF2 effectiveness vs R
  fig4     running time: DP greedy vs approximate greedy
  fig5     approximate greedy running time vs R
  fig6     AHT vs k on the four datasets
  fig7     EHN vs k on the four datasets
  fig8     running time vs k and vs L (Epinions)
  fig9     scalability over the G_1..G_10 series
  fig10    effect of L on AHT and EHN
  all      everything above

FLAGS:
  --full   paper-scale datasets (Fig. 9 full series needs ~6 GB RAM)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let opts = Options { full };
    let selected: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    if selected.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let all = [
        "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    ];
    let run_list: Vec<&str> = if selected.iter().any(|s| s.as_str() == "all") {
        all.to_vec()
    } else {
        let mut list = Vec::new();
        for s in &selected {
            if all.contains(&s.as_str()) {
                list.push(s.as_str());
            } else {
                eprintln!("unknown experiment `{s}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        list
    };

    let started = std::time::Instant::now();
    for name in &run_list {
        let t0 = std::time::Instant::now();
        match *name {
            "table1" => experiments::table1(opts),
            "table2" => experiments::table2(opts),
            "fig2" => experiments::fig2(opts),
            "fig3" => experiments::fig3(opts),
            "fig4" => experiments::fig4(opts),
            "fig5" => experiments::fig5(opts),
            "fig6" => experiments::fig6(opts),
            "fig7" => experiments::fig7(opts),
            "fig8" => experiments::fig8(opts),
            "fig9" => experiments::fig9(opts),
            "fig10" => experiments::fig10(opts),
            _ => unreachable!("validated above"),
        }
        eprintln!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "all requested experiments done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
