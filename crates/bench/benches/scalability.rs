//! Microbench for Fig. 9: approximate-greedy cost vs graph size — the
//! linear-in-n claim at Criterion scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rwd_core::algo::ApproxGreedy;
use rwd_core::problem::{Params, Problem};
use rwd_graph::generators::barabasi_albert;

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability_fig9");
    group.sample_size(10);
    for n in [2_000usize, 4_000, 8_000] {
        let g = barabasi_albert(n, 10, 0x5CA1E).unwrap();
        let params = Params {
            k: 20,
            l: 6,
            r: 50,
            seed: 7,
            ..Params::default()
        };
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                ApproxGreedy::new(Problem::MaxCoverage, params)
                    .run(g)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
