//! Microbench: Algorithm 3 (inverted index construction) — the `O(nRL)`
//! build that dominates Algorithm 6's preprocessing — plus index replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwd_bench::paper_synthetic;
use rwd_walks::WalkIndex;

fn bench_index(c: &mut Criterion) {
    let g = paper_synthetic();

    let mut group = c.benchmark_group("invert_index_build");
    group.sample_size(20);
    for r in [25usize, 100] {
        group.bench_with_input(BenchmarkId::new("parallel", r), &r, |b, &r| {
            b.iter(|| WalkIndex::build(&g, 6, r, 7));
        });
        group.bench_with_input(BenchmarkId::new("serial", r), &r, |b, &r| {
            b.iter(|| WalkIndex::build_with_threads(&g, 6, r, 7, 1));
        });
    }
    group.finish();

    let idx = WalkIndex::build(&g, 6, 100, 7);
    let set = rwd_walks::NodeSet::from_nodes(g.n(), (0..30).map(rwd_graph::NodeId));
    c.bench_function("index_replay_hit_times", |b| {
        b.iter(|| idx.estimate_hit_times(&set));
    });
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
