//! Microbench for Fig. 4: exact DP greedy vs approximate greedy on the
//! paper's synthetic graph (reduced k so Criterion can iterate).

use criterion::{criterion_group, criterion_main, Criterion};
use rwd_bench::small_synthetic;
use rwd_core::algo::{ApproxGreedy, DpGreedy};
use rwd_core::problem::{Params, Problem};

fn bench_greedy(c: &mut Criterion) {
    let g = small_synthetic();
    let params = Params {
        k: 10,
        l: 5,
        r: 100,
        seed: 7,
        ..Params::default()
    };

    let mut group = c.benchmark_group("greedy_variants_fig4");
    group.sample_size(10);
    for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
        group.bench_function(format!("DP{}", problem.suffix()), |b| {
            b.iter(|| DpGreedy::new(problem, params).run(&g).unwrap());
        });
        group.bench_function(format!("Approx{}", problem.suffix()), |b| {
            b.iter(|| ApproxGreedy::new(problem, params).run(&g).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
