//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! * lazy (CELF) vs plain evaluation in the exact greedy,
//! * sweep vs CELF vs delta-maintained gain evaluation in the approximate
//!   greedy,
//! * serial vs parallel index construction,
//! * the combined-λ gain rule vs the pure rules (cost of the blend).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwd_bench::small_synthetic;
use rwd_core::algo::{select_from_index, ApproxGreedy, DpGreedy};
use rwd_core::greedy::approx::GainRule;
use rwd_core::problem::{Params, Problem};
use rwd_core::Strategy;
use rwd_walks::WalkIndex;

fn bench_ablation(c: &mut Criterion) {
    let g = small_synthetic();

    // CELF vs plain on the exact objective.
    let mut group = c.benchmark_group("ablation_dp_lazy");
    group.sample_size(10);
    for strategy in [Strategy::Sweep, Strategy::Celf] {
        let params = Params {
            k: 10,
            l: 5,
            r: 1,
            seed: 7,
            strategy,
            ..Params::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(if strategy == Strategy::Celf {
                "celf"
            } else {
                "plain"
            }),
            &params,
            |b, &p| {
                b.iter(|| DpGreedy::new(Problem::MaxCoverage, p).run(&g).unwrap());
            },
        );
    }
    group.finish();

    // Sweep vs CELF vs delta-maintained gains over a shared prebuilt index.
    let idx = WalkIndex::build(&g, 6, 100, 7);
    let mut group = c.benchmark_group("ablation_approx_strategy");
    group.sample_size(20);
    for (name, strategy) in [
        ("sweep", Strategy::Sweep),
        ("celf", Strategy::Celf),
        ("delta", Strategy::Delta),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &strategy,
            |b, &strategy| {
                b.iter(|| select_from_index(&idx, GainRule::Coverage, 20, strategy, 0).unwrap());
            },
        );
    }
    group.finish();

    // Serial vs parallel index build (same output, different wall clock).
    let mut group = c.benchmark_group("ablation_index_threads");
    group.sample_size(20);
    for threads in [1usize, 0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if threads == 1 { "serial" } else { "all-cores" }),
            &threads,
            |b, &t| {
                b.iter(|| WalkIndex::build_with_threads(&g, 6, 100, 7, t));
            },
        );
    }
    group.finish();

    // Pure rules vs the combined blend (one vs two D tables per sweep).
    let mut group = c.benchmark_group("ablation_gain_rule");
    group.sample_size(20);
    for (name, rule) in [
        ("f1", GainRule::HittingTime),
        ("f2", GainRule::Coverage),
        ("combined", GainRule::Combined { lambda: 0.5 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rule, |b, &rule| {
            b.iter(|| select_from_index(&idx, rule, 10, Strategy::Celf, 0).unwrap());
        });
    }
    group.finish();

    // End-to-end approx greedy (index build + selection) for reference.
    c.bench_function("ablation_approx_end_to_end", |b| {
        let params = Params {
            k: 10,
            l: 6,
            r: 100,
            seed: 7,
            ..Params::default()
        };
        b.iter(|| {
            ApproxGreedy::new(Problem::MaxCoverage, params)
                .run(&g)
                .unwrap()
        });
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
