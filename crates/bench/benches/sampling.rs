//! Microbench: Algorithm 2 (Monte-Carlo estimation of F1/F2) — linear in R,
//! and the parallel speedup over the serial form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwd_bench::small_synthetic;
use rwd_graph::NodeId;
use rwd_walks::estimate::SampleEstimator;
use rwd_walks::NodeSet;

fn bench_sampling(c: &mut Criterion) {
    let g = small_synthetic();
    let set = NodeSet::from_nodes(g.n(), (0..10).map(NodeId));

    let mut group = c.benchmark_group("algorithm2_estimate");
    group.sample_size(20);
    for r in [50usize, 250, 500] {
        group.bench_with_input(BenchmarkId::new("parallel", r), &r, |b, &r| {
            let est = SampleEstimator::new(6, r, 1);
            b.iter(|| est.estimate(&g, &set));
        });
        group.bench_with_input(BenchmarkId::new("serial", r), &r, |b, &r| {
            let est = SampleEstimator::serial(6, r, 1);
            b.iter(|| est.estimate(&g, &set));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
