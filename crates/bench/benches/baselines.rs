//! Microbench for Fig. 8's cost comparison: the baselines vs the
//! approximate greedy at the same budget.

use criterion::{criterion_group, criterion_main, Criterion};
use rwd_bench::paper_synthetic;
use rwd_core::algo::ApproxGreedy;
use rwd_core::baselines;
use rwd_core::problem::{Params, Problem};

fn bench_baselines(c: &mut Criterion) {
    let g = paper_synthetic();
    let k = 50;

    let mut group = c.benchmark_group("baselines_fig8");
    group.sample_size(20);
    group.bench_function("Degree", |b| {
        b.iter(|| baselines::degree_top_k(&g, k).unwrap());
    });
    group.bench_function("Dominate", |b| {
        b.iter(|| baselines::dominate_greedy(&g, k).unwrap());
    });
    group.bench_function("Random", |b| {
        b.iter(|| baselines::random_k(&g, k, 3).unwrap());
    });
    group.bench_function("PageRank", |b| {
        b.iter(|| baselines::pagerank_top_k(&g, k).unwrap());
    });
    group.bench_function("ApproxF2", |b| {
        let p = Params {
            k,
            l: 6,
            r: 100,
            seed: 7,
            ..Params::default()
        };
        b.iter(|| ApproxGreedy::new(Problem::MaxCoverage, p).run(&g).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
