//! Microbench: the exact Eq. (4)/(8) dynamic programs. Cost must scale
//! linearly in `L` at fixed graph size (the `O(mL)` claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwd_bench::paper_synthetic;
use rwd_graph::NodeId;
use rwd_walks::{hitting, NodeSet};

fn bench_dp(c: &mut Criterion) {
    let g = paper_synthetic();
    let set = NodeSet::from_nodes(g.n(), (0..30).map(NodeId));

    let mut group = c.benchmark_group("dp_hitting_time");
    for l in [2u32, 6, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| hitting::hitting_time_to_set(&g, &set, l));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dp_hit_probability");
    for l in [2u32, 6, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| hitting::hit_probability_to_set(&g, &set, l));
        });
    }
    group.finish();

    c.bench_function("dp_exact_f1_l6", |b| {
        b.iter(|| hitting::exact_f1(&g, &set, 6));
    });
}

criterion_group!(benches, bench_dp);
criterion_main!(benches);
