//! Microbench for Fig. 5: approximate-greedy cost as a function of R — the
//! `O(kRLn)` linearity in R.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rwd_bench::small_synthetic;
use rwd_core::algo::ApproxGreedy;
use rwd_core::problem::{Params, Problem};
use rwd_core::Strategy;

fn bench_r_sweep(c: &mut Criterion) {
    let g = small_synthetic();
    let mut group = c.benchmark_group("approx_r_sweep_fig5");
    group.sample_size(10);
    for r in [50usize, 100, 200] {
        let params = Params {
            k: 10,
            l: 5,
            r,
            seed: 7,
            strategy: Strategy::Sweep,
            ..Params::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(r), &params, |b, &p| {
            b.iter(|| {
                ApproxGreedy::new(Problem::MinHittingTime, p)
                    .run(&g)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_r_sweep);
criterion_main!(benches);
