//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this shim implements the
//! subset of the Criterion API the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — over a small
//! warmup-then-measure timing loop. It reports mean/min wall-clock per
//! iteration (and element throughput when configured) instead of Criterion's
//! full statistical analysis, which keeps `cargo bench` useful for relative
//! comparisons while staying dependency-free.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time one measured sample should take.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Registers and runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        run_benchmark(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        run_benchmark(&name, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (report flushing is a no-op here).
    pub fn finish(&mut self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-iteration throughput declaration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    sample_size: usize,
    samples: Vec<Duration>,
    calibrated: bool,
}

impl Bencher {
    /// Measures `routine`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.calibrated {
            // Calibrate: grow the per-sample iteration count until one
            // sample takes long enough to time reliably.
            let mut iters = 1u64;
            loop {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                let elapsed = start.elapsed();
                if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                    self.iters_per_sample = iters;
                    break;
                }
                iters = (iters * 2).max(1);
            }
            self.calibrated = true;
        }
        // Sized so that a closure calling `iter` twice (legal in real
        // Criterion) only ever contributes `sample_size` measurements total.
        let samples = self.sample_size.saturating_sub(self.samples.len());
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut bencher = Bencher {
        iters_per_sample: 1,
        sample_size,
        samples: Vec::with_capacity(sample_size),
        calibrated: false,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no measurement — b.iter never called)");
        return;
    }
    let iters = bencher.iters_per_sample.max(1);
    let per_iter = |d: &Duration| d.as_secs_f64() / iters as f64;
    let mean = bencher.samples.iter().map(per_iter).sum::<f64>() / bencher.samples.len() as f64;
    let min = bencher
        .samples
        .iter()
        .map(per_iter)
        .fold(f64::INFINITY, f64::min);
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12} elem/s", human_count(n as f64 / mean))
        }
        Some(Throughput::Bytes(n)) => format!("  {:>12}B/s", human_count(n as f64 / mean)),
        None => String::new(),
    };
    println!(
        "{name:<48} mean {:>10}  min {:>10}{extra}",
        human_time(mean),
        human_time(min)
    );
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_count(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Bundles benchmark functions into a runnable group, mirroring Criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running the listed groups, mirroring Criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| b.iter(|| x * 2));
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
