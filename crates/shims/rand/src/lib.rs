//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace shim
//! supplies the subset of the rand 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! per seed, which is all the callers (seeded synthetic-graph generators)
//! rely on. It is **not** stream-compatible with the real `StdRng`
//! (ChaCha12), so graphs generated here differ node-for-node from graphs a
//! real-rand build would produce; every consumer in this workspace treats
//! generator output as an opaque function of the seed, so nothing observes
//! the difference.

#![warn(missing_docs)]

/// One round of the splitmix64 mixing function.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of raw random 64-bit words.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly samplable from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `u64` for the Lemire multiply-shift reduction.
    fn to_u64(self) -> u64;
    /// Narrows back after reduction.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    (((rng.next_u64() as u128) * (n as u128)) >> 64) as u64
}

/// Ranges that `Rng::gen_range` accepts (subset: half-open and inclusive
/// integer ranges).
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        let width = hi - lo + 1; // no overflow risk at workspace scales
        T::from_u64(lo + uniform_below(rng, width))
    }
}

/// Extension methods available on every generator.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (`f64` in `[0, 1)`, full-width integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let x = rng.gen_range(0..5usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let x = rng.gen_range(3..=4u32);
            assert!((3..=4).contains(&x));
        }
    }

    #[test]
    fn unit_interval_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
