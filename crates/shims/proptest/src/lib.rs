//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no registry access, so this shim implements the
//! subset of the proptest 1.x API this workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range strategies (`0..n`, `2usize..=12`), tuple strategies (arity ≤ 4),
//!   [`Just`] and [`collection::vec`],
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name, overridable with the
//! `PROPTEST_SEED` environment variable) and failures are **not shrunk** —
//! the failing case's message is reported as-is. Every property in this
//! workspace is cheap to rerun, so unshrunk counterexamples remain
//! debuggable.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64-based RNG driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried, not failed.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integer types range strategies can produce.
pub trait RangeValue: Copy + PartialOrd {
    /// Widens to `u64` (offset by `i64::MIN` for signed types if ever added).
    fn to_u64(self) -> u64;
    /// Inverse of [`RangeValue::to_u64`].
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_range_value!(u8, u16, u32, u64, usize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo + 1))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Derives the deterministic base seed for a named test.
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse() {
            return v;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { .. }` becomes
/// a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::new($crate::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                )));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(100),
                        "proptest: too many inputs rejected by prop_assume! \
                         ({accepted}/{} cases accepted after {attempts} attempts)",
                        config.cases
                    );
                    $(let $pat = ($strategy).new_value(&mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {msg}",
                                accepted + 1,
                                config.cases
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Not routed through `format!`: stringified source may contain braces.
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 5usize..=7) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=7).contains(&y));
        }

        #[test]
        fn flat_map_dependent_values((n, v) in (1usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0..n as u32, 1..8))
        })) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for &x in &v {
                prop_assert!((x as usize) < n, "x {} out of range {}", x, n);
            }
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x % 2, 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u32..1000, 5..10);
        let a = strat.new_value(&mut crate::TestRng::new(42));
        let b = strat.new_value(&mut crate::TestRng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_message() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
