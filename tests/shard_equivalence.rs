//! The sharded-engine acceptance suite: **scatter-gather ≡ monolith**.
//!
//! For every shard count that can tile the walk layers (1, 2, 4, 8 capped
//! at `R`), at every thread count, after any sequence of random churn
//! batches, the sharded coordinator must be **bit-identical** to the
//! single-shard engine on the same trace: same seeds, same per-round gain
//! trace, same objective, same point-query answers, and every per-shard
//! maintained index bitwise equal to a from-scratch build of its layer
//! range on the final graph.
//!
//! Why this holds: walks derive from counter-based `(seed, src, layer)`
//! RNG streams keyed by the **absolute** layer index, so a shard over
//! layers `[lo, hi)` reproduces exactly the monolith's layers through both
//! build and refresh; per-layer contributions are small exact integers, so
//! summing per-shard integer partials and dividing once by `R` equals the
//! monolith's arithmetic bit-for-bit.

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use rwd::core::greedy::approx::GainRule;
use rwd::datasets::temporal::trace_weight;
use rwd::graph::weighted::weighted_twin;
use rwd::prelude::*;
use rwd::stream::EdgeBatch;

const THREADS: [usize; 3] = [1, 2, 8];
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// A random churn instance: base graph, a few batches of raw edit picks,
/// and walk parameters (same shape as the stream_equivalence suite).
fn churn_instance() -> impl PropStrategy<Value = (CsrGraph, Vec<EdgeBatch>, u32, usize, u64)> {
    (20usize..=60)
        .prop_flat_map(|n| {
            let max_edges = (n * 2).min(n * (n - 1) / 2);
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), n / 2..=max_edges),
                proptest::collection::vec(
                    proptest::collection::vec((0u64..u64::MAX, 0..3u8), 1..=5),
                    1..=3,
                ),
                2u32..=6,   // l
                1usize..=5, // r — shard counts above r are skipped per case
                0u64..u64::MAX,
            )
        })
        .prop_map(|(n, edges, batch_picks, l, r, seed)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            let batches = resolve_batches(&g, &batch_picks, seed);
            (g, batches, l, r, seed)
        })
}

/// Turns raw `(pick, kind)` draws into valid batches against the evolving
/// edge set: kind 0 deletes a live edge, other kinds insert an absent pair.
fn resolve_batches(g: &CsrGraph, batch_picks: &[Vec<(u64, u8)>], seed: u64) -> Vec<EdgeBatch> {
    let n = g.n() as u64;
    let mut live: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let mut member: std::collections::HashSet<(u32, u32)> = live.iter().copied().collect();
    let mut batches = Vec::new();
    for (t, picks) in batch_picks.iter().enumerate() {
        let mut batch = EdgeBatch::new(t as u64);
        let mut edited: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for &(pick, kind) in picks {
            if kind == 0 {
                if live.is_empty() {
                    continue;
                }
                let mut i = (pick % live.len() as u64) as usize;
                let mut found = None;
                for _ in 0..live.len() {
                    if !edited.contains(&live[i]) {
                        found = Some(i);
                        break;
                    }
                    i = (i + 1) % live.len();
                }
                let Some(i) = found else { continue };
                let e = live.swap_remove(i);
                member.remove(&e);
                edited.insert(e);
                batch.deletions.push(e);
            } else {
                let mut x = pick;
                let mut found = None;
                for _ in 0..64 {
                    let a = (x % n) as u32;
                    let b = ((x / n) % n) as u32;
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if a == b {
                        continue;
                    }
                    let e = if a < b { (a, b) } else { (b, a) };
                    if member.contains(&e) || edited.contains(&e) {
                        continue;
                    }
                    found = Some(e);
                    break;
                }
                if let Some(e) = found {
                    member.insert(e);
                    live.push(e);
                    edited.insert(e);
                    batch
                        .insertions
                        .push((e.0, e.1, trace_weight(seed, e.0, e.1)));
                }
            }
        }
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    batches
}

/// Bit-level fingerprint of everything a sharded engine answers: seeds,
/// gain trace, objective, and the full point-query surface of the final
/// epoch's snapshot (hit time + hit probability per node, coverage,
/// top-uncovered ranking).
type Fingerprint = (
    Vec<NodeId>,
    Vec<u64>,
    u64,
    Vec<u64>,
    u64,
    Vec<(NodeId, u64)>,
);

fn fingerprint(engine: &StreamEngine) -> Fingerprint {
    let snap = Snapshot::capture(engine);
    let n = snap.n();
    let mut points = Vec::with_capacity(2 * n);
    for v in 0..n as u32 {
        points.push(snap.hit_time(NodeId(v)).to_bits());
        points.push(snap.hit_prob(NodeId(v)).to_bits());
    }
    (
        engine.seeds().to_vec(),
        engine.gain_trace().iter().map(|x| x.to_bits()).collect(),
        engine.objective().to_bits(),
        points,
        snap.coverage().to_bits(),
        snap.top_m_uncovered(5)
            .into_iter()
            .map(|(v, x)| (v, x.to_bits()))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unweighted: at every shard count × thread count, the coordinator
    /// matches the single-shard engine bitwise and every shard's
    /// post-churn maintained index equals a from-scratch build of its
    /// layer range on the final graph.
    #[test]
    fn sharded_equals_monolith_unweighted(
        (g0, batches, l, r, seed) in churn_instance()
    ) {
        prop_assume!(!batches.is_empty());
        let k = (g0.n() / 10).max(1);
        let cfg = rwd::stream::StreamConfig {
            l, r, k, seed, rule: GainRule::HittingTime, threads: 1,
        };
        let mut reference = StreamEngine::new(g0.clone(), cfg).unwrap();
        for batch in &batches {
            reference.apply(batch).expect("resolved batches are valid");
        }
        let want = fingerprint(&reference);

        for shards in SHARDS.into_iter().filter(|&s| s <= r) {
            for threads in THREADS {
                let cfg = rwd::stream::StreamConfig { threads, ..cfg };
                let mut eng = StreamEngine::with_shards(g0.clone(), cfg, shards).unwrap();
                for batch in &batches {
                    eng.apply(batch).expect("resolved batches are valid");
                }
                let got = fingerprint(&eng);
                prop_assert_eq!(
                    &got, &want,
                    "shards {} threads {}: answers drifted from the monolith",
                    shards, threads
                );
                let final_g = eng.graph().unwrap();
                for (idx, rg) in eng.shard_indexes().iter().zip(eng.shard_ranges()) {
                    let fresh = WalkIndex::build_layer_range(final_g, l, rg, seed, 0);
                    prop_assert!(
                        **idx == fresh,
                        "shards {shards} threads {threads}: maintained shard \
                         [{}, {}) != rebuilt layer range",
                        rg.start(), rg.end()
                    );
                }
            }
        }
    }

    /// Weighted twin: alias-table-driven walks sharded over layer ranges
    /// must still reproduce the single-shard engine bit-for-bit.
    #[test]
    fn sharded_equals_monolith_weighted(
        (g0, batches, l, r, seed) in churn_instance()
    ) {
        prop_assume!(!batches.is_empty());
        let w0 = weighted_twin(&g0, seed).expect("twin");
        let k = (g0.n() / 10).max(1);
        let cfg = rwd::stream::StreamConfig {
            l, r, k, seed, rule: GainRule::Coverage, threads: 1,
        };
        let mut reference = StreamEngine::new_weighted(w0.clone(), cfg).unwrap();
        for batch in &batches {
            reference.apply(batch).expect("resolved batches are valid");
        }
        let want = fingerprint(&reference);

        for shards in SHARDS.into_iter().filter(|&s| s <= r) {
            for threads in THREADS {
                let cfg = rwd::stream::StreamConfig { threads, ..cfg };
                let mut eng =
                    StreamEngine::with_shards_weighted(w0.clone(), cfg, shards).unwrap();
                for batch in &batches {
                    eng.apply(batch).expect("resolved batches are valid");
                }
                let got = fingerprint(&eng);
                prop_assert_eq!(
                    &got, &want,
                    "shards {} threads {}: weighted answers drifted from the monolith",
                    shards, threads
                );
                let final_g = eng.weighted_graph().unwrap();
                for (idx, rg) in eng.shard_indexes().iter().zip(eng.shard_ranges()) {
                    let fresh = WalkIndex::build_weighted_layer_range(final_g, l, rg, seed, 0);
                    prop_assert!(
                        **idx == fresh,
                        "shards {shards} threads {threads}: maintained weighted shard \
                         [{}, {}) != rebuilt layer range",
                        rg.start(), rg.end()
                    );
                }
            }
        }
    }
}
