//! Faithful reproduction of the paper's running example (Example 3.1 and
//! Table 1) through the public API.
//!
//! The paper fixes R = 1, L = 2 and the eight walks
//! `(v1,v2,v3) … (v8,v7,v4)`, then traces Algorithm 3 (index), Algorithm 4
//! (first-round gains), the v2 selection, Algorithm 5 (update), and the
//! second-round selection of v7. Every intermediate value printed in the
//! paper is asserted here.

use rwd::core::greedy::approx::{GainEngine, GainRule};
use rwd::graph::generators::paper_example::{figure1, v};
use rwd::prelude::*;

/// The eight fixed walks of Example 3.1, in paper labels.
const WALKS: [[usize; 3]; 8] = [
    [1, 2, 3],
    [2, 3, 5],
    [3, 2, 5],
    [4, 7, 5],
    [5, 2, 6],
    [6, 7, 5],
    [7, 5, 7],
    [8, 7, 4],
];

fn example_index() -> WalkIndex {
    let walks: Vec<Vec<NodeId>> = WALKS
        .iter()
        .map(|w| w.iter().map(|&x| v(x)).collect())
        .collect();
    WalkIndex::from_walks(8, 2, &walks)
}

#[test]
fn walks_are_valid_on_figure1() {
    let g = figure1();
    for w in WALKS {
        assert!(g.has_edge(v(w[0]), v(w[1])), "v{}-v{}", w[0], w[1]);
        assert!(g.has_edge(v(w[1]), v(w[2])), "v{}-v{}", w[1], w[2]);
    }
}

#[test]
fn table_1_inverted_index() {
    let idx = example_index();
    let list = |label: usize| -> Vec<(usize, u32)> {
        idx.postings(0, v(label))
            .iter()
            .map(|p| (p.id.index() + 1, p.weight))
            .collect()
    };
    assert_eq!(list(1), vec![]);
    assert_eq!(list(2), vec![(1, 1), (3, 1), (5, 1)]);
    assert_eq!(list(3), vec![(1, 2), (2, 1)]);
    assert_eq!(list(4), vec![(8, 2)]);
    assert_eq!(list(5), vec![(2, 2), (3, 2), (4, 2), (6, 2), (7, 1)]);
    assert_eq!(list(6), vec![(5, 2)]);
    assert_eq!(list(7), vec![(4, 1), (6, 1), (8, 1)]);
    assert_eq!(list(8), vec![]);
}

#[test]
fn first_round_gains_match_paper() {
    // σ_v1(∅)=2, σ_v2(∅)=5, σ_v3(∅)=3, σ_v4(∅)=2, σ_v5(∅)=3, σ_v6(∅)=2,
    // σ_v7(∅)=5, σ_v8(∅)=2.
    let idx = example_index();
    let engine = GainEngine::new(&idx, GainRule::HittingTime);
    let gains = engine.gains_all();
    let expected = [2.0, 5.0, 3.0, 2.0, 3.0, 2.0, 5.0, 2.0];
    for label in 1..=8 {
        assert_eq!(
            gains[v(label).index()],
            expected[label - 1],
            "σ_v{label}(∅)"
        );
    }
}

#[test]
fn update_after_v2_matches_paper() {
    // "only D[1][2], D[1][1], D[1][3], and D[1][5] need to be updated, and
    //  they are re-set to 0, 1, 1, and 1" — paper indexes by label here.
    let idx = example_index();
    let mut engine = GainEngine::new(&idx, GainRule::HittingTime);
    engine.update(v(2));
    let d = engine.hit_times();
    assert_eq!(d[v(2).index()], 0.0);
    assert_eq!(d[v(1).index()], 1.0);
    assert_eq!(d[v(3).index()], 1.0);
    assert_eq!(d[v(5).index()], 1.0);
    for label in [4usize, 6, 7, 8] {
        assert_eq!(d[v(label).index()], 2.0, "D[v{label}] untouched");
    }
}

#[test]
fn algorithm_6_selects_v2_then_v7() {
    // The paper breaks the first-round v2/v7 tie toward v2 ("assume that in
    // this round, the algorithm selects v2"); our deterministic tie-break
    // (smaller id) does the same. Second round must pick v7.
    let idx = example_index();
    let sel =
        rwd::core::algo::select_from_index(&idx, GainRule::HittingTime, 2, Strategy::Sweep, 1)
            .expect("selection");
    assert_eq!(sel.nodes, vec![v(2), v(7)]);
    // CELF and the delta engine agree.
    for strategy in [Strategy::Celf, Strategy::Delta] {
        let other = rwd::core::algo::select_from_index(&idx, GainRule::HittingTime, 2, strategy, 1)
            .expect("selection");
        assert_eq!(other.nodes, vec![v(2), v(7)], "{strategy:?}");
    }
}

#[test]
fn problem_2_on_example_walks() {
    // Under the coverage rule, v2's first-round gain is 1 + |{v1, v3, v5}|
    // = 4 and v7's is 1 + |{v4, v6, v8}| = 4; v5 gets 1 + 5 = 6 (hit by
    // v2, v3, v4, v6, v7), making it the top pick.
    let idx = example_index();
    let engine = GainEngine::new(&idx, GainRule::Coverage);
    let gains = engine.gains_all();
    assert_eq!(gains[v(2).index()], 4.0);
    assert_eq!(gains[v(7).index()], 4.0);
    assert_eq!(gains[v(5).index()], 6.0);
    let sel = rwd::core::algo::select_from_index(&idx, GainRule::Coverage, 1, Strategy::Sweep, 1)
        .expect("selection");
    assert_eq!(sel.nodes, vec![v(5)]);
}

#[test]
fn estimated_f1_after_both_picks() {
    // After S = {v2, v7}: D = [1, 0, 1, 1, 1, 2, 0, 1] (v4 hits v7 at hop 1,
    // v6 at hop 1, v8 at hop 1; v5 keeps 1 via v2; v6's walk (v6,v7,v5) hits
    // v7 at hop 1 → 1; recompute: v1→1, v3→1, v5→1, v4→1, v6→1, v8→1).
    let idx = example_index();
    let mut engine = GainEngine::new(&idx, GainRule::HittingTime);
    engine.update(v(2));
    engine.update(v(7));
    let d = engine.hit_times();
    let expected = [1.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 1.0];
    for label in 1..=8 {
        assert_eq!(d[v(label).index()], expected[label - 1], "D[v{label}]");
    }
    // F̂1 = nL − Σ D = 16 − 6 = 10, matching σ_v2(∅) + σ_v7(S) = 5 + 5.
    assert_eq!(engine.est_f1(), 10.0);
}
