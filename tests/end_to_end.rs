//! End-to-end pipelines through the façade crate: datasets → solvers →
//! metrics → extensions, the way a downstream user would wire things up.

use rwd::core::algo::approx_combined;
use rwd::core::greedy::driver;
use rwd::core::objective::{EdgeCoverage, Objective};
use rwd::prelude::*;

#[test]
fn dataset_to_selection_to_metrics() {
    let g = rwd::datasets::Dataset::CaGrQc
        .synthetic_connected(0.08)
        .unwrap();
    let params = Params {
        k: 10,
        l: 6,
        r: 80,
        seed: 1,
        ..Params::default()
    };
    let sel = ApproxGreedy::new(Problem::MaxCoverage, params)
        .run(&g)
        .unwrap();
    assert_eq!(sel.nodes.len(), 10);

    let m = metrics::evaluate(
        &g,
        &sel.nodes,
        MetricParams {
            l: 6,
            r: 300,
            seed: 2,
        },
    );
    assert!(m.ehn > 10.0, "selection must dominate more than itself");
    assert!(m.aht < 6.0, "AHT must beat the truncation bound");

    // Cross-check the estimated metrics against the exact DP.
    let exact = metrics::evaluate_exact(&g, &sel.nodes, 6);
    assert!(
        (m.aht - exact.aht).abs() < 0.25,
        "{} vs {}",
        m.aht,
        exact.aht
    );
    assert!((m.ehn - exact.ehn).abs() / exact.ehn < 0.1);
}

#[test]
fn edge_list_round_trip_pipeline() {
    // Generate → write → reload → solve: the CLI's workflow as a library.
    let g = rwd::graph::generators::watts_strogatz(300, 4, 0.2, 8).unwrap();
    let dir = std::env::temp_dir().join("rwd_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("overlay.edges");
    rwd::graph::edgelist::write_edge_list(&g, &path).unwrap();
    let reloaded = rwd::graph::edgelist::read_edge_list(&path).unwrap();
    assert_eq!(reloaded.graph.n(), 300);
    assert_eq!(reloaded.graph.m(), g.m());

    let sel = ApproxGreedy::new(
        Problem::MinHittingTime,
        Params {
            k: 5,
            l: 4,
            r: 50,
            seed: 3,
            ..Params::default()
        },
    )
    .run(&reloaded.graph)
    .unwrap();
    assert_eq!(sel.nodes.len(), 5);
    std::fs::remove_file(&path).ok();
}

#[test]
fn coverage_extension_full_pipeline() {
    let g = rwd::datasets::Dataset::Brightkite
        .synthetic_connected(0.01)
        .unwrap();
    let res = min_nodes_for_coverage(
        &g,
        CoverageParams {
            alpha: 0.8,
            l: 6,
            r: 60,
            seed: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(res.reached, "80% coverage must be reachable");
    assert!(res.k() < g.n() / 2, "greedy needs far fewer than n/2 nodes");

    // Verify the claim with an independent exact evaluation.
    let exact = metrics::ehn_exact(&g, &res.nodes, 6);
    assert!(
        exact >= 0.7 * g.n() as f64,
        "exact EHN {exact} should confirm ≈80% domination of n = {}",
        g.n()
    );
}

#[test]
fn combined_objective_interpolates_metrics() {
    let g = rwd::graph::generators::watts_strogatz(800, 6, 0.1, 6).unwrap();
    let params = Params {
        k: 12,
        l: 3,
        r: 80,
        seed: 5,
        ..Params::default()
    };
    let pure1 = approx_combined(&g, 1.0, params).unwrap();
    let pure2 = approx_combined(&g, 0.0, params).unwrap();
    let blend = approx_combined(&g, 0.5, params).unwrap();
    assert_eq!(blend.nodes.len(), 12);

    // Endpoint equivalence with the dedicated problems.
    let f1 = ApproxGreedy::new(Problem::MinHittingTime, params)
        .run(&g)
        .unwrap();
    let f2 = ApproxGreedy::new(Problem::MaxCoverage, params)
        .run(&g)
        .unwrap();
    assert_eq!(pure1.nodes, f1.nodes);
    assert_eq!(pure2.nodes, f2.nodes);

    // The blend's metrics must sit within the envelope of the pure
    // solutions (tiny slack for sampling noise).
    let m1 = metrics::evaluate_exact(&g, &pure1.nodes, 3);
    let m2 = metrics::evaluate_exact(&g, &pure2.nodes, 3);
    let mb = metrics::evaluate_exact(&g, &blend.nodes, 3);
    let lo = m1.aht.min(m2.aht) - 0.05;
    let hi = m1.aht.max(m2.aht) + 0.05;
    assert!(
        (lo..=hi).contains(&mb.aht),
        "blend AHT {mb:?} outside [{lo}, {hi}]"
    );
}

#[test]
fn edge_coverage_greedy_runs_and_improves() {
    // Extension 2: greedy over the edge-coverage objective via the generic
    // driver — covered edges must grow with every pick.
    let g = rwd::graph::generators::barabasi_albert(120, 3, 12).unwrap();
    let f3 = EdgeCoverage::build(&g, 4, 12, 9);
    let out = driver::greedy(&f3, 6, true);
    assert_eq!(out.nodes.len(), 6);
    for w in out.objective_trace.windows(2) {
        assert!(w[1] >= w[0] - 1e-9, "edge coverage must not shrink");
    }
    assert!(
        *out.objective_trace.last().unwrap() <= g.m() as f64,
        "cannot cover more edges than exist"
    );
    // The greedy pick must beat a random pick of the same size.
    let random: Vec<NodeId> = (100..106).map(NodeId).collect();
    let random_set = NodeSet::from_nodes(g.n(), random);
    assert!(
        out.objective_trace.last().unwrap() >= &f3.eval(&random_set),
        "greedy edge coverage under random?"
    );
}

#[test]
fn weighted_extension_pipeline() {
    // The weighted walker + DP wired end to end: uniform weights reproduce
    // the unweighted DP; a skewed bridge edge drags walks across it.
    use rwd::graph::weighted::WeightedCsrGraph;
    use rwd::walks::hitting::{hit_probability_to_set_weighted, hitting_time_to_set_weighted};

    let g = rwd::graph::generators::classic::cycle(12).unwrap();
    let uniform: Vec<(u32, u32, f64)> = g.edges().map(|(u, v)| (u.raw(), v.raw(), 1.0)).collect();
    let wg = WeightedCsrGraph::from_weighted_edges(12, &uniform).unwrap();
    let set = NodeSet::from_nodes(12, [NodeId(0)]);
    let hw = hitting_time_to_set_weighted(&wg, &set, 6);
    let hu = rwd::walks::hitting::hitting_time_to_set(&g, &set, 6);
    for u in 0..12 {
        assert!((hw[u] - hu[u]).abs() < 1e-12);
    }

    // Skew all weights toward node 0's edges: hit probabilities increase.
    let skewed: Vec<(u32, u32, f64)> = g
        .edges()
        .map(|(u, v)| {
            let w = if u == NodeId(0) || v == NodeId(0) {
                25.0
            } else {
                1.0
            };
            (u.raw(), v.raw(), w)
        })
        .collect();
    let wg2 = WeightedCsrGraph::from_weighted_edges(12, &skewed).unwrap();
    let p_uniform = hit_probability_to_set_weighted(&wg, &set, 6);
    let p_skewed = hit_probability_to_set_weighted(&wg2, &set, 6);
    assert!(
        p_skewed[1] > p_uniform[1],
        "heavier edges into 0 raise hits"
    );
    assert!(p_skewed[11] > p_uniform[11]);
}

#[test]
fn facade_prelude_suffices_for_the_basic_workflow() {
    // Everything a user needs must be importable from rwd::prelude.
    let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
    let b = GraphBuilder::undirected();
    drop(b);
    let sel = DpGreedy::new(
        Problem::MaxCoverage,
        Params {
            k: 2,
            l: 3,
            r: 1,
            seed: 0,
            ..Params::default()
        },
    )
    .run(&g)
    .unwrap();
    let set: NodeSet = sel.to_set(5);
    assert_eq!(set.len(), 2);
    let _ = baselines::degree_top_k(&g, 2).unwrap();
    let idx = WalkIndex::build(&g, 3, 8, 0);
    assert_eq!(idx.n(), 5);
}
