//! Thread-count invariance regression tests.
//!
//! The walk machinery keys every sampled walk by a `(seed, node,
//! walk-index)` RNG stream, so estimates must be **bit-identical** for any
//! worker count — the property the module docs promise and every
//! reproducibility claim in this repo rests on. These tests pin it on a
//! 500-node Barabási–Albert graph at 1, 2 and 8 threads.
//!
//! All compared quantities are exact sums of small integers in `f64`
//! (≤ 2^53), so even the cross-thread reductions are associative and
//! `assert_eq!` on the raw bits is the right comparison — no tolerances.

use rwd::prelude::*;
use rwd::walks::estimate::SampleEstimator;
use rwd_core::greedy::approx::{GainEngine, GainRule};

const THREADS: [usize; 3] = [1, 2, 8];

fn ba_graph() -> CsrGraph {
    rwd::graph::generators::barabasi_albert(500, 4, 0xD5EED).unwrap()
}

/// The BA graph with deterministic pseudo-random edge weights: the weighted
/// twin of [`ba_graph`] for the weighted-build invariance test.
fn weighted_ba_graph() -> rwd::graph::weighted::WeightedCsrGraph {
    rwd::graph::weighted::weighted_twin(&ba_graph(), 0xD5EED).unwrap()
}

#[test]
fn sample_estimator_is_thread_invariant() {
    let g = ba_graph();
    let set = NodeSet::from_nodes(g.n(), [NodeId(0), NodeId(17), NodeId(230)]);
    let baseline = SampleEstimator {
        l: 6,
        r: 40,
        seed: 42,
        threads: THREADS[0],
    }
    .estimate(&g, &set);
    for threads in &THREADS[1..] {
        let est = SampleEstimator {
            l: 6,
            r: 40,
            seed: 42,
            threads: *threads,
        }
        .estimate(&g, &set);
        assert_eq!(est.f1.to_bits(), baseline.f1.to_bits(), "{threads} threads");
        assert_eq!(est.f2.to_bits(), baseline.f2.to_bits(), "{threads} threads");
        assert_eq!(est.hit_time, baseline.hit_time, "{threads} threads");
        assert_eq!(est.hit_prob, baseline.hit_prob, "{threads} threads");
    }
}

#[test]
fn walk_index_is_thread_invariant() {
    let g = ba_graph();
    let set = NodeSet::from_nodes(g.n(), [NodeId(3), NodeId(99)]);
    let baseline = WalkIndex::build_with_threads(&g, 5, 16, 7, THREADS[0]);
    for threads in &THREADS[1..] {
        let idx = WalkIndex::build_with_threads(&g, 5, 16, 7, *threads);
        assert_eq!(
            idx.total_postings(),
            baseline.total_postings(),
            "{threads} threads"
        );
        for layer in 0..idx.r() {
            for v in g.nodes() {
                assert_eq!(
                    idx.postings(layer, v),
                    baseline.postings(layer, v),
                    "layer {layer}, node {v}, {threads} threads"
                );
            }
        }
        assert_eq!(
            idx.estimate_hit_times(&set),
            baseline.estimate_hit_times(&set),
            "{threads} threads"
        );
        assert_eq!(
            idx.estimate_hit_probs(&set),
            baseline.estimate_hit_probs(&set),
            "{threads} threads"
        );
    }
}

#[test]
fn weighted_walk_index_is_thread_invariant() {
    // The weighted build runs the same 2-D (layer × node-chunk) grid as the
    // unweighted one; alias-table draws come from per-(seed, node, layer)
    // streams, so postings must be bit-identical at any worker count.
    let g = weighted_ba_graph();
    let set = NodeSet::from_nodes(g.n(), [NodeId(3), NodeId(99)]);
    let baseline = WalkIndex::build_weighted_with_threads(&g, 5, 16, 7, THREADS[0]);
    for threads in &THREADS[1..] {
        let idx = WalkIndex::build_weighted_with_threads(&g, 5, 16, 7, *threads);
        assert_eq!(
            idx.total_postings(),
            baseline.total_postings(),
            "{threads} threads"
        );
        for layer in 0..idx.r() {
            for v in g.nodes() {
                assert_eq!(
                    idx.postings(layer, v),
                    baseline.postings(layer, v),
                    "layer {layer}, node {v}, {threads} threads"
                );
            }
        }
        assert_eq!(
            idx.estimate_hit_times(&set),
            baseline.estimate_hit_times(&set),
            "{threads} threads"
        );
        assert_eq!(
            idx.estimate_hit_probs(&set),
            baseline.estimate_hit_probs(&set),
            "{threads} threads"
        );
    }
    // And the convenience all-cores entry point agrees with the explicit one.
    let all_cores = WalkIndex::build_weighted(&g, 5, 16, 7);
    assert_eq!(all_cores.total_postings(), baseline.total_postings());
    for layer in 0..baseline.r() {
        for v in g.nodes() {
            assert_eq!(all_cores.postings(layer, v), baseline.postings(layer, v));
        }
    }
}

#[test]
fn index_estimates_are_thread_invariant_above_gate() {
    // The layer-parallel replay estimators: large enough (r·n past the
    // shared sweep gate) that multi-thread calls actually fan out, and the
    // chunk-ordered integer reductions must be bit-identical to serial.
    let g = rwd::graph::generators::barabasi_albert(2_100, 4, 0xD5EED).unwrap();
    let idx = WalkIndex::build(&g, 5, 16, 7);
    assert!(
        idx.r() * idx.n() >= rwd::walks::parallel::MIN_PARALLEL_SWEEP_WORK,
        "fixture must cross the sweep gate"
    );
    let set = NodeSet::from_nodes(g.n(), [NodeId(3), NodeId(99), NodeId(1_500)]);
    let times = idx.estimate_hit_times_with_threads(&set, THREADS[0]);
    let probs = idx.estimate_hit_probs_with_threads(&set, THREADS[0]);
    for threads in &THREADS[1..] {
        assert_eq!(
            idx.estimate_hit_times_with_threads(&set, *threads),
            times,
            "hit times, {threads} threads"
        );
        assert_eq!(
            idx.estimate_hit_probs_with_threads(&set, *threads),
            probs,
            "hit probs, {threads} threads"
        );
    }
    // The threadless entry points resolve to all cores and must agree too.
    assert_eq!(idx.estimate_hit_times(&set), times);
    assert_eq!(idx.estimate_hit_probs(&set), probs);
}

#[test]
fn gain_sweep_is_thread_invariant() {
    let g = ba_graph();
    let idx = WalkIndex::build(&g, 5, 12, 21);
    for rule in [
        GainRule::HittingTime,
        GainRule::Coverage,
        GainRule::Combined { lambda: 0.4 },
    ] {
        let mut baseline = GainEngine::with_threads(&idx, rule, THREADS[0]);
        baseline.update(NodeId(11));
        let expected = baseline.gains_all();
        for threads in &THREADS[1..] {
            let mut engine = GainEngine::with_threads(&idx, rule, *threads);
            engine.update(NodeId(11));
            let gains = engine.gains_all();
            for (u, (a, b)) in gains.iter().zip(&expected).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "rule {rule:?}, node {u}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn solver_output_is_thread_invariant() {
    // End to end: the approximate greedy driven by the parallel machinery
    // must pick the same nodes regardless of worker count. `threads` rides
    // in via Params.
    let g = ba_graph();
    let pick = |threads: usize| {
        let params = Params {
            k: 6,
            l: 5,
            r: 24,
            seed: 3,
            threads,
            ..Params::default()
        };
        ApproxGreedy::new(Problem::MaxCoverage, params)
            .run(&g)
            .unwrap()
            .nodes
    };
    let baseline = pick(THREADS[0]);
    for threads in &THREADS[1..] {
        assert_eq!(pick(*threads), baseline, "{threads} threads");
    }
}
