//! Cross-validation of the three evaluation pipelines: exact DP (Theorems
//! 2.2/2.3), Monte-Carlo estimation (Algorithm 2, Lemmas 3.1–3.4) and the
//! inverted-index replay (Algorithms 3–5).

use proptest::prelude::*;
use rwd::core::greedy::approx::{GainEngine, GainRule};
use rwd::prelude::*;
use rwd::walks::estimate::{samples_for_f1, samples_for_f2, SampleEstimator};
use rwd::walks::hitting;

#[test]
fn estimator_concentrates_within_hoeffding_envelope() {
    // Lemma 3.3 at (ε, δ) = (0.15, 0.05): the deviation event
    // |F̂1 − F1| ≥ ε(n−|S|)L may occur with probability ≤ δ. With a fixed
    // seed this is deterministic; the chosen seed satisfies the bound (and
    // the estimate is far inside the envelope, as expected on average).
    let g = rwd::graph::generators::barabasi_albert(400, 4, 3).unwrap();
    let l = 5;
    let set = NodeSet::from_nodes(g.n(), [NodeId(0), NodeId(7), NodeId(42)]);
    let eps = 0.15;
    let r = samples_for_f1(g.n(), set.len(), eps, 0.05);
    let est = SampleEstimator::new(l, r, 11).estimate(&g, &set);
    let exact = hitting::exact_f1(&g, &set, l);
    let envelope = eps * (g.n() - set.len()) as f64 * l as f64;
    assert!(
        (est.f1 - exact).abs() < envelope,
        "deviation {} exceeds ε(n−|S|)L = {envelope}",
        (est.f1 - exact).abs()
    );

    let r2 = samples_for_f2(g.n(), eps, 0.05);
    let est2 = SampleEstimator::new(l, r2, 13).estimate(&g, &set);
    let exact2 = hitting::exact_f2(&g, &set, l);
    assert!((est2.f2 - exact2).abs() < eps * g.n() as f64);
}

#[test]
fn estimator_mean_converges_with_r() {
    // Unbiasedness in practice: error shrinks as R grows (compare R=8 vs
    // R=2048 against the DP truth on a fixed instance).
    let g = rwd::graph::generators::barabasi_albert(200, 3, 9).unwrap();
    let l = 6;
    let set = NodeSet::from_nodes(g.n(), [NodeId(3), NodeId(50)]);
    let exact = hitting::exact_f1(&g, &set, l);
    let err = |r: usize| (SampleEstimator::new(l, r, 5).estimate(&g, &set).f1 - exact).abs();
    let coarse = err(8);
    let fine = err(2048);
    assert!(
        fine < coarse,
        "R=2048 error {fine} should beat R=8 error {coarse}"
    );
    assert!(
        fine / exact < 0.02,
        "relative error at R=2048: {}",
        fine / exact
    );
}

#[test]
fn index_replay_tracks_dp_hitting_times() {
    let g = rwd::graph::generators::barabasi_albert(300, 3, 21).unwrap();
    let l = 5;
    let idx = WalkIndex::build(&g, l, 600, 17);
    let set = NodeSet::from_nodes(g.n(), [NodeId(1), NodeId(12), NodeId(200)]);
    let replayed = idx.estimate_hit_times(&set);
    let exact = hitting::hitting_time_to_set(&g, &set, l);
    let mean_abs: f64 = replayed
        .iter()
        .zip(&exact)
        .map(|(a, b)| (a - b).abs())
        .sum::<f64>()
        / g.n() as f64;
    assert!(mean_abs < 0.1, "mean |index − dp| = {mean_abs}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The incremental D-table (Algorithm 5) must equal a from-scratch
    /// replay of the same index for ANY insertion sequence — exact
    /// equality, because both consume identical materialized walks.
    #[test]
    fn gain_engine_equals_batch_replay(picks in proptest::collection::vec(0u32..30, 1..6)) {
        let g = rwd::graph::generators::barabasi_albert(30, 2, 4).unwrap();
        let idx = WalkIndex::build(&g, 4, 12, 99);
        let mut engine = GainEngine::new(&idx, GainRule::HittingTime);
        let mut engine2 = GainEngine::new(&idx, GainRule::Coverage);
        for &p in &picks {
            let u = NodeId(p);
            if engine.selected().contains(u) {
                continue;
            }
            engine.update(u);
            engine2.update(u);
            prop_assert_eq!(engine.hit_times(), idx.estimate_hit_times(engine.selected()));
            prop_assert_eq!(engine2.hit_probs(), idx.estimate_hit_probs(engine2.selected()));
        }
    }

    /// Algorithm 4's gain must equal the objective difference computed by
    /// two independent engines — for every candidate, every rule.
    #[test]
    fn gain_is_exact_marginal_of_indexed_objective(seed in 0u64..50) {
        let g = rwd::graph::generators::erdos_renyi_gnm(25, 60, seed).unwrap();
        let idx = WalkIndex::build(&g, 3, 8, seed);
        for rule in [GainRule::HittingTime, GainRule::Coverage] {
            let mut base_engine = GainEngine::new(&idx, rule);
            base_engine.update(NodeId((seed % 25) as u32));
            let base = match rule {
                GainRule::HittingTime => base_engine.est_f1(),
                _ => base_engine.est_f2(),
            };
            for u in 0..25u32 {
                let u = NodeId(u);
                if base_engine.selected().contains(u) {
                    continue;
                }
                let predicted = base_engine.gain_single(u);
                let mut probe = GainEngine::new(&idx, rule);
                probe.update(NodeId((seed % 25) as u32));
                probe.update(u);
                let actual = match rule {
                    GainRule::HittingTime => probe.est_f1(),
                    _ => probe.est_f2(),
                } - base;
                prop_assert!((predicted - actual).abs() < 1e-9,
                    "rule {:?} u {}: {} vs {}", rule, u, predicted, actual);
            }
        }
    }
}

#[test]
fn sample_sizes_match_lemma_formulas() {
    // Spot-check the closed forms of Lemmas 3.3/3.4.
    let r = samples_for_f1(1000, 30, 0.1, 0.05);
    let expected = ((970.0f64 / 0.05).ln() / 0.02).ceil() as usize;
    assert_eq!(r, expected);
    let r = samples_for_f2(1000, 0.1, 0.05);
    let expected = ((1000.0f64 / 0.05).ln() / 0.02).ceil() as usize;
    assert_eq!(r, expected);
}
