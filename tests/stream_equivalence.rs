//! The evolving-graph acceptance suite: **incremental ≡ rebuild**.
//!
//! After any sequence of random update batches, at any thread count, the
//! incrementally maintained walk index must be **bit-identical** — inverted
//! postings, forward views, per-node aggregates — to a from-scratch
//! `build`/`build_weighted` on the final graph, and the maintained seed set
//! must equal the static `Strategy::Delta` selection on that rebuilt index.
//! The resampling argument this rests on: walks derive from counter-based
//! `(seed, src, layer)` RNG streams, so a group whose visit set avoids
//! every touched node replays identically, and only groups reachable from
//! the touched set are re-walked.

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use rwd::core::algo::select_from_index;
use rwd::core::greedy::approx::GainRule;
use rwd::datasets::temporal::trace_weight;
use rwd::graph::weighted::weighted_twin;
use rwd::prelude::*;
use rwd::stream::EdgeBatch;

const THREADS: [usize; 3] = [1, 2, 8];

/// A random churn instance: base graph, a few batches of raw edit picks,
/// and walk parameters. Edit picks are resolved into valid batches against
/// the evolving edge set (delete an existing edge / insert an absent one),
/// so every generated case applies cleanly.
fn churn_instance() -> impl PropStrategy<Value = (CsrGraph, Vec<EdgeBatch>, u32, usize, u64)> {
    (20usize..=70)
        .prop_flat_map(|n| {
            let max_edges = (n * 2).min(n * (n - 1) / 2);
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), n / 2..=max_edges),
                proptest::collection::vec(
                    proptest::collection::vec((0u64..u64::MAX, 0..3u8), 1..=6),
                    1..=3,
                ),
                2u32..=7,   // l
                1usize..=5, // r
                0u64..u64::MAX,
            )
        })
        .prop_map(|(n, edges, batch_picks, l, r, seed)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            let batches = resolve_batches(&g, &batch_picks, seed);
            (g, batches, l, r, seed)
        })
}

/// Turns raw `(pick, kind)` draws into valid batches against the evolving
/// edge set: kind 0 deletes a live edge (skipped when none is free), other
/// kinds insert an absent pair (skipped when the graph is complete).
fn resolve_batches(g: &CsrGraph, batch_picks: &[Vec<(u64, u8)>], seed: u64) -> Vec<EdgeBatch> {
    let n = g.n() as u64;
    let mut live: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let mut member: std::collections::HashSet<(u32, u32)> = live.iter().copied().collect();
    let mut batches = Vec::new();
    for (t, picks) in batch_picks.iter().enumerate() {
        let mut batch = EdgeBatch::new(t as u64);
        let mut edited: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for &(pick, kind) in picks {
            if kind == 0 {
                if live.is_empty() {
                    continue;
                }
                // Probe for a live edge not already edited this batch —
                // deletions apply before insertions, so deleting a
                // same-batch insertion would be invalid.
                let mut i = (pick % live.len() as u64) as usize;
                let mut found = None;
                for _ in 0..live.len() {
                    if !edited.contains(&live[i]) {
                        found = Some(i);
                        break;
                    }
                    i = (i + 1) % live.len();
                }
                let Some(i) = found else { continue };
                let e = live.swap_remove(i);
                member.remove(&e);
                edited.insert(e);
                batch.deletions.push(e);
            } else {
                // Probe a bounded number of pair candidates from the pick.
                let mut x = pick;
                let mut found = None;
                for _ in 0..64 {
                    let a = (x % n) as u32;
                    let b = ((x / n) % n) as u32;
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if a == b {
                        continue;
                    }
                    let e = if a < b { (a, b) } else { (b, a) };
                    if member.contains(&e) || edited.contains(&e) {
                        continue;
                    }
                    found = Some(e);
                    break;
                }
                if let Some(e) = found {
                    member.insert(e);
                    live.push(e);
                    edited.insert(e);
                    batch
                        .insertions
                        .push((e.0, e.1, trace_weight(seed, e.0, e.1)));
                }
            }
        }
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unweighted: maintained index ≡ rebuilt index (bitwise) at 1/2/8
    /// threads, and the resampled-group count never exceeds the bound the
    /// touched set implies.
    #[test]
    fn incremental_equals_rebuild_unweighted(
        (g0, batches, l, r, seed) in churn_instance()
    ) {
        prop_assume!(!batches.is_empty());
        for threads in THREADS {
            let mut idx = WalkIndex::build_with_threads(&g0, l, r, seed, threads);
            let mut g = g0.clone();
            for batch in &batches {
                let delta = batch.apply(&g).expect("resolved batches are valid");
                let stats = idx.refresh_with_threads(&delta.graph, &delta.touched, threads);
                prop_assert!(stats.groups_resampled >= delta.touched.len() * r);
                prop_assert!(stats.groups_resampled <= stats.groups_total);
                g = delta.graph;
            }
            let fresh = WalkIndex::build_with_threads(&g, l, r, seed, threads);
            prop_assert!(idx == fresh, "threads {threads}: maintained != rebuilt");
        }
    }

    /// Weighted twin of the same property — alias tables patched per row
    /// must reproduce the walks of a fully rebuilt weighted graph.
    #[test]
    fn incremental_equals_rebuild_weighted(
        (g0, batches, l, r, seed) in churn_instance()
    ) {
        prop_assume!(!batches.is_empty());
        let w0 = weighted_twin(&g0, seed).expect("twin");
        for threads in THREADS {
            let mut idx = WalkIndex::build_weighted_with_threads(&w0, l, r, seed, threads);
            let mut wg = w0.clone();
            for batch in &batches {
                let delta = batch.apply_weighted(&wg).expect("resolved batches are valid");
                idx.refresh_weighted_with_threads(&delta.graph, &delta.touched, threads);
                wg = delta.graph;
            }
            let fresh = WalkIndex::build_weighted_with_threads(&wg, l, r, seed, threads);
            prop_assert!(idx == fresh, "threads {threads}: maintained != rebuilt");
        }
    }

    /// Seed maintenance: after replaying the batches through the full
    /// engine, the maintained seed set equals the static `Strategy::Delta`
    /// selection on a from-scratch index of the final graph.
    #[test]
    fn maintained_seeds_equal_rebuild_selection(
        (g0, batches, l, r, seed) in churn_instance()
    ) {
        prop_assume!(!batches.is_empty());
        let k = (g0.n() / 10).max(1);
        for rule in [GainRule::HittingTime, GainRule::Coverage] {
            let cfg = rwd::stream::StreamConfig {
                l, r, k, seed, rule, threads: 0,
            };
            let mut engine = StreamEngine::new(g0.clone(), cfg).unwrap();
            for batch in &batches {
                engine.apply(batch).expect("resolved batches are valid");
            }
            let fresh = WalkIndex::build(engine.graph().unwrap(), l, r, seed);
            let sel =
                select_from_index(&fresh, rule, k, rwd::core::Strategy::Delta, 0).unwrap();
            prop_assert_eq!(
                engine.seeds(), &sel.nodes[..],
                "{:?}: maintained seeds != rebuilt selection", rule
            );
        }
    }
}
