//! Cross-solver consistency: the approximate greedy must track the exact
//! greedy (the paper's Figs. 2–3 claim), beat the baselines (Figs. 6–7),
//! and be invariant to evaluation strategy and thread count.

use rwd::core::baselines;
use rwd::core::metrics;
use rwd::prelude::*;
use rwd::walks::hitting;

fn ba_graph() -> CsrGraph {
    rwd::graph::generators::barabasi_albert(400, 5, 2024).unwrap()
}

#[test]
fn approx_matches_dp_objective_within_percent() {
    let g = ba_graph();
    let l = 5;
    let k = 15;
    for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
        let dp = DpGreedy::new(
            problem,
            Params {
                k,
                l,
                r: 1,
                seed: 5,
                ..Params::default()
            },
        )
        .run(&g)
        .unwrap();
        let ap = ApproxGreedy::new(
            problem,
            Params {
                k,
                l,
                r: 200,
                seed: 5,
                ..Params::default()
            },
        )
        .run(&g)
        .unwrap();
        let exact = |sel: &Selection| match problem {
            Problem::MinHittingTime => hitting::exact_f1(&g, &sel.to_set(g.n()), l),
            Problem::MaxCoverage => hitting::exact_f2(&g, &sel.to_set(g.n()), l),
        };
        let (d, a) = (exact(&dp), exact(&ap));
        assert!(
            a >= 0.97 * d,
            "{problem:?}: approx objective {a} vs dp {d} — Figs. 2–3 shape violated"
        );
    }
}

#[test]
fn greedy_beats_baselines_on_both_metrics() {
    let g = ba_graph();
    let l = 6;
    let k = 20;
    let params = Params {
        k,
        l,
        r: 150,
        seed: 31,
        ..Params::default()
    };
    let ap1 = ApproxGreedy::new(Problem::MinHittingTime, params)
        .run(&g)
        .unwrap();
    let ap2 = ApproxGreedy::new(Problem::MaxCoverage, params)
        .run(&g)
        .unwrap();
    let dominate = baselines::dominate_greedy(&g, k).unwrap();
    let random = baselines::random_k(&g, k, 7).unwrap();

    let m = |sel: &Selection| metrics::evaluate_exact(&g, &sel.nodes, l);
    let (m1, m2, md, mr) = (m(&ap1), m(&ap2), m(&dominate), m(&random));

    // Figs. 6–7: greedy variants beat Dominate and Random on both metrics.
    assert!(
        m1.aht <= md.aht + 1e-9,
        "ApproxF1 AHT {} vs Dominate {}",
        m1.aht,
        md.aht
    );
    assert!(
        m2.ehn >= md.ehn - 1e-9,
        "ApproxF2 EHN {} vs Dominate {}",
        m2.ehn,
        md.ehn
    );
    assert!(m1.aht < mr.aht, "greedy must crush random on AHT");
    assert!(m2.ehn > mr.ehn, "greedy must crush random on EHN");

    // Each problem's specialist wins (or ties) its own metric.
    assert!(m1.aht <= m2.aht + 0.05, "ApproxF1 optimizes AHT");
    assert!(m2.ehn >= m1.ehn - 2.0, "ApproxF2 optimizes EHN");
}

#[test]
fn k_monotonicity_of_metrics() {
    // Fig. 6/7 shape: AHT decreases and EHN increases as k grows.
    let g = ba_graph();
    let l = 6;
    let idx = WalkIndex::build(&g, l, 100, 77);
    let mut last_aht = f64::INFINITY;
    let mut last_ehn = 0.0;
    for k in [5usize, 20, 60] {
        let sel = ApproxGreedy::new(
            Problem::MaxCoverage,
            Params {
                k,
                l,
                r: 100,
                seed: 77,
                ..Params::default()
            },
        )
        .run_with_index(&idx)
        .unwrap();
        let m = metrics::evaluate_exact(&g, &sel.nodes, l);
        assert!(m.aht < last_aht, "AHT must fall with k");
        assert!(m.ehn > last_ehn, "EHN must rise with k");
        last_aht = m.aht;
        last_ehn = m.ehn;
    }
}

#[test]
fn l_monotonicity_of_metrics() {
    // Fig. 10 shape: both AHT and EHN increase with L for a fixed selection
    // strategy.
    let g = ba_graph();
    let k = 10;
    let mut last_aht = 0.0;
    let mut last_ehn = 0.0;
    for l in [2u32, 4, 6, 8] {
        let sel = ApproxGreedy::new(
            Problem::MaxCoverage,
            Params {
                k,
                l,
                r: 100,
                seed: 3,
                ..Params::default()
            },
        )
        .run(&g)
        .unwrap();
        let m = metrics::evaluate_exact(&g, &sel.nodes, l);
        assert!(
            m.aht >= last_aht - 1e-9,
            "AHT rises with L (hitting times truncate at L)"
        );
        assert!(
            m.ehn >= last_ehn - 1e-9,
            "EHN rises with L (longer walks hit more)"
        );
        last_aht = m.aht;
        last_ehn = m.ehn;
    }
}

#[test]
fn greedy_objective_is_near_optimal_on_tiny_graph() {
    // Brute-force optimality check: on an 8-node graph, greedy F2 with
    // k = 2 must achieve ≥ (1 − 1/e) of the best pair (it actually achieves
    // the optimum here).
    let g = rwd::graph::generators::paper_example::figure1();
    let l = 4;
    let sel = DpGreedy::new(
        Problem::MaxCoverage,
        Params {
            k: 2,
            l,
            r: 1,
            seed: 0,
            ..Params::default()
        },
    )
    .run(&g)
    .unwrap();
    let greedy_val = hitting::exact_f2(&g, &sel.to_set(8), l);

    let mut best = 0.0f64;
    for a in 0..8u32 {
        for b in (a + 1)..8 {
            let s = NodeSet::from_nodes(8, [NodeId(a), NodeId(b)]);
            best = best.max(hitting::exact_f2(&g, &s, l));
        }
    }
    assert!(
        greedy_val >= (1.0 - 1.0 / std::f64::consts::E) * best - 1e-9,
        "guarantee violated: greedy {greedy_val} vs optimum {best}"
    );
    assert!(
        greedy_val >= 0.99 * best,
        "greedy is optimal on this instance"
    );
}

#[test]
fn all_solvers_agree_on_obvious_instance() {
    // Star graph: every solver and both problems must pick the hub first.
    let g = rwd::graph::generators::classic::star(30).unwrap();
    let params = Params {
        k: 1,
        l: 3,
        r: 100,
        seed: 1,
        ..Params::default()
    };
    for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
        let dp = DpGreedy::new(problem, params).run(&g).unwrap();
        let sg = SamplingGreedy::new(problem, params).run(&g).unwrap();
        let ap = ApproxGreedy::new(problem, params).run(&g).unwrap();
        assert_eq!(dp.nodes, vec![NodeId(0)]);
        assert_eq!(sg.nodes, vec![NodeId(0)]);
        assert_eq!(ap.nodes, vec![NodeId(0)]);
    }
}

#[test]
fn selections_invariant_to_threads_and_strategy() {
    let g = ba_graph();
    let base = Params {
        k: 12,
        l: 5,
        r: 64,
        seed: 9,
        threads: 1,
        strategy: Strategy::Sweep,
    };
    let reference = ApproxGreedy::new(Problem::MinHittingTime, base)
        .run(&g)
        .unwrap();
    for threads in [0usize, 2, 8] {
        for strategy in [Strategy::Sweep, Strategy::Celf, Strategy::Delta] {
            let p = Params {
                threads,
                strategy,
                ..base
            };
            let sel = ApproxGreedy::new(Problem::MinHittingTime, p)
                .run(&g)
                .unwrap();
            assert_eq!(
                sel.nodes, reference.nodes,
                "threads={threads} strategy={strategy:?} changed the selection"
            );
        }
    }
}

#[test]
fn gain_traces_decrease_monotonically() {
    // Submodularity forces non-increasing greedy gains in every solver.
    let g = ba_graph();
    let params = Params {
        k: 10,
        l: 5,
        r: 100,
        seed: 13,
        ..Params::default()
    };
    for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
        for sel in [
            DpGreedy::new(problem, params).run(&g).unwrap(),
            ApproxGreedy::new(problem, params).run(&g).unwrap(),
        ] {
            for w in sel.gain_trace.windows(2) {
                assert!(
                    w[0] >= w[1] - 1e-6,
                    "{}: gains rose: {:?}",
                    sel.algorithm,
                    sel.gain_trace
                );
            }
        }
    }
}
