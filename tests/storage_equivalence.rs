//! Cross-crate equivalence for the zero-copy storage path.
//!
//! The mapped open's correctness story is the same one every other layer
//! of this codebase tells: **bit-identity**. A `WalkIndex` served from an
//! `mmap`ed RWDIDX4 file must be indistinguishable — on every read path
//! the stack exposes — from the owned index that wrote it, and the first
//! refresh that promotes its layers to the heap must land on exactly the
//! bits an owned-from-the-start refresh produces, at every shard count
//! and thread count.
//!
//! The walks crate pins format-level round trips and rejection
//! (`crates/walks/tests/storage.rs`); this suite pins the *consumers*:
//! point queries, coverage/uncovered ranking, both gain engines, and the
//! shard-grain maintenance loop.

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use rwd::core::greedy::{DeltaGainEngine, GainEngine, GainRule};
use rwd::prelude::*;
use rwd::walks::LayerRange;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const THREADS: [usize; 3] = [1, 2, 8];
const SHARDS: [usize; 3] = [1, 2, 4];

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rwd-storage-eq-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// True when this host has the zero-copy path at all; elsewhere the suite
/// degenerates to (already covered) owned-path assertions and exits early.
fn mapped_path_available() -> bool {
    cfg!(unix) && cfg!(target_endian = "little")
}

/// A random simple graph, walk parameters and a random query set.
fn random_instance() -> impl PropStrategy<Value = (CsrGraph, u32, usize, u64, Vec<u32>)> {
    (5usize..=40)
        .prop_flat_map(|n| {
            let max_edges = (n * (n - 1) / 2).min(120);
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_edges),
                1u32..=8,   // l
                1usize..=6, // r
                0u64..u64::MAX,
                proptest::collection::vec(0..n as u32, 0..=6), // set members
            )
        })
        .prop_map(|(n, edges, l, r, seed, members)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            (g, l, r, seed, members)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A mapped open answers every read path with the owned index's bits:
    /// point queries, coverage, uncovered ranking, the streaming gain
    /// sweep, the delta gain engine across a greedy round, and a re-save.
    #[test]
    fn mapped_open_is_bit_identical_on_every_read_path(
        (g, l, r, seed, members) in random_instance(),
        m in 0usize..=12,
    ) {
        if !mapped_path_available() {
            return Ok(());
        }
        let idx = WalkIndex::build(&g, l, r, seed);
        let dir = tmp_dir("paths");
        let path = dir.join("mono.rwdidx");
        idx.save_v4(&path).unwrap();
        let mapped = WalkIndex::open_mapped(&path).unwrap();
        prop_assert_eq!(&mapped, &idx);
        prop_assert!(mapped.mapped_bytes() > 0);

        // Point-query surface.
        let set = NodeSet::from_nodes(g.n(), members.into_iter().map(NodeId));
        for v in g.nodes() {
            prop_assert_eq!(
                mapped.point_hit_time(v, &set).to_bits(),
                idx.point_hit_time(v, &set).to_bits(),
                "hit time diverges at {}", v
            );
            prop_assert_eq!(
                mapped.point_hit_prob(v, &set).to_bits(),
                idx.point_hit_prob(v, &set).to_bits(),
                "hit prob diverges at {}", v
            );
        }
        prop_assert_eq!(mapped.coverage(&set).to_bits(), idx.coverage(&set).to_bits());
        let (got, want) = (mapped.top_m_uncovered(m, &set), idx.top_m_uncovered(m, &set));
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        }

        // Both gain engines, through a full greedy round on the delta one.
        for rule in [GainRule::HittingTime, GainRule::Coverage] {
            let ga = GainEngine::new(&idx, rule).gains_all();
            let gb = GainEngine::new(&mapped, rule).gains_all();
            for (a, b) in ga.iter().zip(&gb) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            let mut ea = DeltaGainEngine::new(&idx, rule);
            let mut eb = DeltaGainEngine::new(&mapped, rule);
            for v in g.nodes() {
                prop_assert_eq!(ea.gain(v).to_bits(), eb.gain(v).to_bits());
            }
            let (pa, pb) = (ea.best_candidate(), eb.best_candidate());
            prop_assert_eq!(
                pa.map(|(v, x)| (v, x.to_bits())),
                pb.map(|(v, x)| (v, x.to_bits()))
            );
            if let Some((pick, _)) = pa {
                ea.update(pick);
                eb.update(pick);
                for v in g.nodes() {
                    prop_assert_eq!(ea.gain(v).to_bits(), eb.gain(v).to_bits());
                }
            }
        }

        // Save round-trip: the mapped index re-saves to the same bytes.
        let resaved = dir.join("resaved.rwdidx");
        mapped.save_v4(&resaved).unwrap();
        prop_assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&resaved).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Contiguous tiling of `r` layers into `shards` ranges, matching the
/// engine's scatter-gather layout.
fn tile(r: usize, shards: usize) -> Vec<LayerRange> {
    (0..shards)
        .map(|s| LayerRange::new(s * r / shards, (s + 1) * r / shards))
        .collect()
}

/// Promote-on-refresh ≡ owned-refresh across the shard × thread grid: each
/// shard opens its layer range zero-copy from the monolithic snapshot,
/// refreshes against the churned graph (promoting every mapped layer),
/// and must land bit-exactly on the owned shard's refresh — which itself
/// equals a from-scratch build on the new graph.
#[test]
fn promote_on_refresh_matches_owned_refresh_across_shards_and_threads() {
    if !mapped_path_available() {
        return;
    }
    let (l, r, seed) = (5u32, 8usize, 23u64);
    let g0 = rwd::graph::generators::barabasi_albert(80, 3, 17).unwrap();
    let dir = tmp_dir("grid");
    let path = dir.join("mono.rwdidx");
    WalkIndex::build(&g0, l, r, seed).save_v4(&path).unwrap();

    // Churn: drop one live edge, add two absent ones.
    let mut edges: Vec<(u32, u32)> = g0.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let dropped = edges.swap_remove(edges.len() / 2);
    let mut added = Vec::new();
    'outer: for u in 0..g0.n() as u32 {
        for v in (u + 1)..g0.n() as u32 {
            if !g0.has_edge(NodeId(u), NodeId(v)) && (u, v) != dropped {
                edges.push((u, v));
                added.push((u, v));
                if added.len() == 2 {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(added.len(), 2, "sample graph is not complete");
    let g1 = CsrGraph::from_edges(g0.n(), &edges).unwrap();
    let touched = NodeSet::from_nodes(
        g0.n(),
        [dropped]
            .into_iter()
            .chain(added)
            .flat_map(|(u, v)| [NodeId(u), NodeId(v)]),
    );

    for shards in SHARDS {
        for threads in THREADS {
            for range in tile(r, shards) {
                let mut owned = WalkIndex::build_layer_range(&g0, l, range, seed, threads);
                owned.refresh_with_threads(&g1, &touched, threads);

                let mut mapped = WalkIndex::open_mapped_layer_range(&path, range).unwrap();
                assert_eq!(mapped.mapped_layers(), range.len());
                mapped.refresh_with_threads(&g1, &touched, threads);
                assert_eq!(
                    mapped, owned,
                    "promoted refresh drifted at shards={shards} threads={threads} {range:?}"
                );
                assert_eq!(
                    mapped.mapped_layers(),
                    0,
                    "touched endpoints resample a group in every layer"
                );
                assert_eq!(
                    mapped,
                    WalkIndex::build_layer_range(&g1, l, range, seed, threads),
                    "maintained shard != from-scratch build on the new graph"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
