//! Strategy equivalence: `Strategy::Delta` must be a pure accelerator.
//!
//! The delta engine maintains every candidate's gain as exact integers
//! repaired through the forward view, so its selections, gain traces and
//! objective traces must be **byte-identical** to both CELF and the plain
//! per-round sweep — on unweighted and weighted graphs, at k ∈ {1, 5, 20}
//! and 1/2/8 worker threads. Any divergence means the delta recurrence
//! dropped or double-counted a repair.

use rwd::core::algo::{approx_greedy_weighted, delta_greedy_with_stats};
use rwd::core::greedy::approx::GainRule;
use rwd::prelude::*;

const KS: [usize; 3] = [1, 5, 20];
const THREADS: [usize; 3] = [1, 2, 8];

fn ba_graph() -> CsrGraph {
    rwd::graph::generators::barabasi_albert(400, 4, 0xDE17A).unwrap()
}

/// Bitwise equality for f64 traces (all strategies do the same arithmetic
/// on the same integers, so there is no tolerance to grant).
fn assert_traces_identical(a: &Selection, b: &Selection, ctx: &str) {
    assert_eq!(a.nodes, b.nodes, "{ctx}: seed sets differ");
    assert_eq!(
        a.gain_trace.len(),
        b.gain_trace.len(),
        "{ctx}: trace lengths differ"
    );
    for (i, (x, y)) in a.gain_trace.iter().zip(&b.gain_trace).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: gain_trace[{i}]");
    }
    for (i, (x, y)) in a.objective_trace.iter().zip(&b.objective_trace).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: objective_trace[{i}]");
    }
}

#[test]
fn delta_matches_celf_and_sweep_on_unweighted_graphs() {
    let g = ba_graph();
    for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
        for k in KS {
            for threads in THREADS {
                let mk = |strategy: Strategy| {
                    let p = Params {
                        k,
                        l: 5,
                        r: 32,
                        seed: 11,
                        threads,
                        strategy,
                    };
                    ApproxGreedy::new(problem, p).run(&g).unwrap()
                };
                let delta = mk(Strategy::Delta);
                let celf = mk(Strategy::Celf);
                let sweep = mk(Strategy::Sweep);
                let ctx = format!("{problem:?} k={k} threads={threads}");
                assert_traces_identical(&delta, &celf, &format!("{ctx} vs celf"));
                assert_traces_identical(&delta, &sweep, &format!("{ctx} vs sweep"));
            }
        }
    }
}

#[test]
fn delta_matches_celf_and_sweep_on_weighted_graphs() {
    let g = ba_graph();
    let wg = rwd::graph::weighted::weighted_twin(&g, 0xDE17A).unwrap();
    for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
        for k in KS {
            for threads in THREADS {
                let mk = |strategy: Strategy| {
                    let p = Params {
                        k,
                        l: 5,
                        r: 32,
                        seed: 13,
                        threads,
                        strategy,
                    };
                    approx_greedy_weighted(&wg, problem, p).unwrap()
                };
                let delta = mk(Strategy::Delta);
                let celf = mk(Strategy::Celf);
                let sweep = mk(Strategy::Sweep);
                let ctx = format!("weighted {problem:?} k={k} threads={threads}");
                assert_traces_identical(&delta, &celf, &format!("{ctx} vs celf"));
                assert_traces_identical(&delta, &sweep, &format!("{ctx} vs sweep"));
            }
        }
    }
}

#[test]
fn delta_matches_under_combined_rule() {
    // The λ-blend exercises both D tables and both gain tables in one
    // engine; the blend arithmetic must still be bit-identical.
    let g = ba_graph();
    let idx = WalkIndex::build(&g, 5, 24, 21);
    for lambda in [0.0, 0.35, 1.0] {
        let rule = GainRule::Combined { lambda };
        for threads in THREADS {
            let delta =
                rwd::core::algo::select_from_index(&idx, rule, 10, Strategy::Delta, threads)
                    .unwrap();
            let celf = rwd::core::algo::select_from_index(&idx, rule, 10, Strategy::Celf, threads)
                .unwrap();
            assert_traces_identical(
                &delta,
                &celf,
                &format!("combined λ={lambda} threads={threads}"),
            );
        }
    }
}

#[test]
fn delta_rounds_do_sublinear_work_after_round_one() {
    // The acceptance-criterion shape: per-round touched postings drop well
    // below one full index sweep once the D tables tighten.
    let g = ba_graph();
    let idx = WalkIndex::build(&g, 6, 64, 5);
    let (sel, touched) = delta_greedy_with_stats(&idx, GainRule::HittingTime, 20, 0).unwrap();
    assert_eq!(sel.nodes.len(), 20);
    let total = idx.total_postings();
    for (round, &t) in touched.iter().enumerate().skip(1) {
        assert!(
            t < total / 2,
            "round {round} touched {t} of {total} postings — not output-sensitive"
        );
    }
}
