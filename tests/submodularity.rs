//! Property-based verification of the paper's Theorems 2.1, 3.1 and 3.2 on
//! random small graphs: hitting-time bounds, DP-vs-enumeration agreement,
//! monotonicity and submodularity of `F1`/`F2`.

use proptest::prelude::*;
// `rwd::prelude` also exports a (greedy) `Strategy`; this file means the
// proptest trait.
use proptest::Strategy;
use rwd::prelude::*;
use rwd::walks::{enumerate, hitting};

/// Strategy: a random connected-ish simple graph with 3..=7 nodes plus a
/// random target set and walk bound.
fn small_instance() -> impl Strategy<Value = (CsrGraph, Vec<u32>, u32)> {
    (3usize..=7)
        .prop_flat_map(|n| {
            let max_edges = n * (n - 1) / 2;
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_edges),
                proptest::collection::vec(0..n as u32, 1..=2),
                1u32..=4,
            )
        })
        .prop_map(|(n, edges, set, l)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            (g, set, l)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2.1: 0 ≤ h^L_uS ≤ L; probabilities in [0, 1].
    #[test]
    fn hitting_values_are_bounded((g, set, l) in small_instance()) {
        let s = NodeSet::from_nodes(g.n(), set.iter().map(|&u| NodeId(u)));
        let h = hitting::hitting_time_to_set(&g, &s, l);
        let p = hitting::hit_probability_to_set(&g, &s, l);
        for u in 0..g.n() {
            prop_assert!((0.0..=l as f64 + 1e-12).contains(&h[u]), "h[{u}] = {}", h[u]);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&p[u]), "p[{u}] = {}", p[u]);
        }
    }

    /// Theorems 2.2/2.3: the DP recursions equal brute-force enumeration
    /// over every realizable walk.
    #[test]
    fn dp_matches_enumeration((g, set, l) in small_instance()) {
        let s = NodeSet::from_nodes(g.n(), set.iter().map(|&u| NodeId(u)));
        let h = hitting::hitting_time_to_set(&g, &s, l);
        let p = hitting::hit_probability_to_set(&g, &s, l);
        for u in g.nodes() {
            let he = enumerate::hit_expectation(&g, u, &s, l);
            let pe = enumerate::hit_probability(&g, u, &s, l);
            prop_assert!((h[u.index()] - he).abs() < 1e-9, "h mismatch at {u}: dp {} enum {he}", h[u.index()]);
            prop_assert!((p[u.index()] - pe).abs() < 1e-9, "p mismatch at {u}");
        }
    }

    /// Theorem 3.1/3.2 groundwork: growing the target set can only help —
    /// h is non-increasing and p non-decreasing under set inclusion.
    #[test]
    fn set_inclusion_monotonicity((g, set, l) in small_instance(), extra in 0u32..7) {
        let n = g.n();
        let extra = extra % n as u32;
        let s = NodeSet::from_nodes(n, set.iter().map(|&u| NodeId(u)));
        let mut t = s.clone();
        t.insert(NodeId(extra));
        let hs = hitting::hitting_time_to_set(&g, &s, l);
        let ht = hitting::hitting_time_to_set(&g, &t, l);
        let ps = hitting::hit_probability_to_set(&g, &s, l);
        let pt = hitting::hit_probability_to_set(&g, &t, l);
        for u in 0..n {
            prop_assert!(ht[u] <= hs[u] + 1e-12);
            prop_assert!(pt[u] >= ps[u] - 1e-12);
        }
    }

    /// Theorems 3.1/3.2 in full: F1 and F2 are monotone nondecreasing and
    /// submodular, with F(∅) = 0.
    #[test]
    fn f1_f2_monotone_submodular((g, set, l) in small_instance(), j in 0u32..7, x in 0u32..7) {
        let n = g.n();
        let j = NodeId(j % n as u32);
        let x = NodeId(x % n as u32);
        let s = NodeSet::from_nodes(n, set.iter().map(|&u| NodeId(u)));
        let mut t = s.clone();
        t.insert(x);
        prop_assume!(!t.contains(j));

        let empty = NodeSet::new(n);
        prop_assert!(hitting::exact_f1(&g, &empty, l).abs() < 1e-12);
        prop_assert!(hitting::exact_f2(&g, &empty, l).abs() < 1e-12);

        for f in [hitting::exact_f1, hitting::exact_f2] {
            let fs = f(&g, &s, l);
            let ft = f(&g, &t, l);
            prop_assert!(ft >= fs - 1e-9, "monotone: F(T) {ft} < F(S) {fs}");

            let mut sj = s.clone();
            sj.insert(j);
            let mut tj = t.clone();
            tj.insert(j);
            let gain_s = f(&g, &sj, l) - fs;
            let gain_t = f(&g, &tj, l) - ft;
            prop_assert!(gain_s >= gain_t - 1e-9, "submodular: σ_j(S) {gain_s} < σ_j(T) {gain_t}");
            prop_assert!(gain_t >= -1e-9, "gains never negative");
        }
    }

    /// The L-truncation nests: quantities are monotone in L as well.
    #[test]
    fn monotone_in_l((g, set, _l) in small_instance()) {
        let s = NodeSet::from_nodes(g.n(), set.iter().map(|&u| NodeId(u)));
        let mut prev_p = vec![0.0; g.n()];
        let mut prev_h = vec![0.0; g.n()];
        for l in 0..=5 {
            let h = hitting::hitting_time_to_set(&g, &s, l);
            let p = hitting::hit_probability_to_set(&g, &s, l);
            for u in 0..g.n() {
                prop_assert!(h[u] >= prev_h[u] - 1e-12);
                prop_assert!(p[u] >= prev_p[u] - 1e-12);
            }
            prev_h = h;
            prev_p = p;
        }
    }
}
