//! Warm-start acceptance suite: **warm maintenance ≡ cold rebuild**.
//!
//! The seed maintainer keeps its gain engine alive across epochs: each
//! batch's refresh emits a posting edit script, the engine absorbs it in
//! `O(touched)`, and still-valid recorded rounds replay from their logs
//! instead of re-streaming the index. This suite pins the contract that
//! warmth is **purely a wall-time optimization**: after any sequence of
//! random churn batches, a warm engine and an engine forced cold on every
//! batch (`set_maintain_crossover(0.0)` — the crossover fallback path)
//! must agree **bitwise** on seeds, gain traces, objectives and
//! touched-posting counts, at every shard count × thread count, on both
//! unweighted and weighted graphs.

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use rwd::core::greedy::approx::GainRule;
use rwd::datasets::temporal::trace_weight;
use rwd::graph::weighted::weighted_twin;
use rwd::prelude::*;
use rwd::stream::{EdgeBatch, StreamConfig};

const SHARDS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 3] = [1, 2, 8];

/// A random churn instance: base graph, a few batches of raw edit picks
/// resolved into valid batches against the evolving edge set, and walk
/// parameters. `r` starts at 4 so every shard count in [`SHARDS`] tiles.
fn churn_instance() -> impl PropStrategy<Value = (CsrGraph, Vec<EdgeBatch>, u32, usize, u64)> {
    (20usize..=60)
        .prop_flat_map(|n| {
            let max_edges = (n * 2).min(n * (n - 1) / 2);
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), n / 2..=max_edges),
                proptest::collection::vec(
                    proptest::collection::vec((0u64..u64::MAX, 0..3u8), 1..=5),
                    1..=3,
                ),
                2u32..=6,   // l
                4usize..=6, // r
                0u64..u64::MAX,
            )
        })
        .prop_map(|(n, edges, batch_picks, l, r, seed)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            let batches = resolve_batches(&g, &batch_picks, seed);
            (g, batches, l, r, seed)
        })
}

/// Turns raw `(pick, kind)` draws into valid batches against the evolving
/// edge set: kind 0 deletes a live edge (skipped when none is free), other
/// kinds insert an absent pair (skipped when the graph is complete).
fn resolve_batches(g: &CsrGraph, batch_picks: &[Vec<(u64, u8)>], seed: u64) -> Vec<EdgeBatch> {
    let n = g.n() as u64;
    let mut live: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let mut member: std::collections::HashSet<(u32, u32)> = live.iter().copied().collect();
    let mut batches = Vec::new();
    for (t, picks) in batch_picks.iter().enumerate() {
        let mut batch = EdgeBatch::new(t as u64);
        let mut edited: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for &(pick, kind) in picks {
            if kind == 0 {
                if live.is_empty() {
                    continue;
                }
                let mut i = (pick % live.len() as u64) as usize;
                let mut found = None;
                for _ in 0..live.len() {
                    if !edited.contains(&live[i]) {
                        found = Some(i);
                        break;
                    }
                    i = (i + 1) % live.len();
                }
                let Some(i) = found else { continue };
                let e = live.swap_remove(i);
                member.remove(&e);
                edited.insert(e);
                batch.deletions.push(e);
            } else {
                let mut x = pick;
                let mut found = None;
                for _ in 0..64 {
                    let a = (x % n) as u32;
                    let b = ((x / n) % n) as u32;
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if a == b {
                        continue;
                    }
                    let e = if a < b { (a, b) } else { (b, a) };
                    if member.contains(&e) || edited.contains(&e) {
                        continue;
                    }
                    found = Some(e);
                    break;
                }
                if let Some(e) = found {
                    member.insert(e);
                    live.push(e);
                    edited.insert(e);
                    batch
                        .insertions
                        .push((e.0, e.1, trace_weight(seed, e.0, e.1)));
                }
            }
        }
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    batches
}

/// Drives the same batch trace through a warm engine and a forced-cold
/// engine, asserting bitwise agreement after every batch, and returns the
/// final seed set (for cross-configuration comparison).
fn assert_warm_equals_cold(
    mut warm: StreamEngine,
    mut cold: StreamEngine,
    batches: &[EdgeBatch],
    tag: &str,
) -> Result<Vec<NodeId>, TestCaseError> {
    // The fallback path under test: every non-empty edit script exceeds a
    // zero crossover, so this engine rebuilds its gain engine each batch.
    cold.set_maintain_crossover(0.0);
    let bits = |t: &[f64]| t.iter().map(|g| g.to_bits()).collect::<Vec<_>>();
    for (b, batch) in batches.iter().enumerate() {
        let rw = warm.apply(batch).expect("resolved batches are valid");
        let rc = cold.apply(batch).expect("resolved batches are valid");
        prop_assert_eq!(warm.seeds(), cold.seeds(), "{} batch {}: seeds", tag, b);
        prop_assert_eq!(
            bits(warm.gain_trace()),
            bits(cold.gain_trace()),
            "{} batch {}: gain trace",
            tag,
            b
        );
        prop_assert_eq!(
            warm.objective().to_bits(),
            cold.objective().to_bits(),
            "{} batch {}: objective",
            tag,
            b
        );
        // The reports must agree on everything except how the answer was
        // produced (warm flag, absorbed/replayed accounting, wall times).
        prop_assert_eq!(rw.maintain.seeds_swapped, rc.maintain.seeds_swapped);
        prop_assert_eq!(rw.maintain.rounds_kept, rc.maintain.rounds_kept);
        prop_assert_eq!(
            rw.maintain.first_invalid_round,
            rc.maintain.first_invalid_round
        );
        prop_assert_eq!(
            rw.maintain.touched_postings,
            rc.maintain.touched_postings,
            "{} batch {}: touched postings",
            tag,
            b
        );
        prop_assert_eq!(
            rw.maintain.objective.to_bits(),
            rc.maintain.objective.to_bits()
        );
        // A forced-cold pass never absorbs or replays (an all-identical
        // edit script has zero gross edits and may still go warm — but
        // then it absorbs zero postings by definition).
        prop_assert_eq!(rc.maintain.replayed_rounds, 0, "{} batch {}", tag, b);
        prop_assert_eq!(rc.maintain.absorbed_postings, 0);
    }
    Ok(warm.seeds().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Unweighted: warm ≡ forced-cold at every shard × thread count, and
    /// every configuration lands on the same final seed set.
    #[test]
    fn warm_maintenance_equals_cold_unweighted(
        (g0, batches, l, r, seed) in churn_instance()
    ) {
        prop_assume!(!batches.is_empty());
        let k = (g0.n() / 12).max(2);
        let mut reference: Option<Vec<NodeId>> = None;
        for shards in SHARDS {
            for threads in THREADS {
                let cfg = StreamConfig {
                    l, r, k, seed, rule: GainRule::HittingTime, threads,
                };
                let warm = StreamEngine::with_shards(g0.clone(), cfg, shards).unwrap();
                let cold = StreamEngine::with_shards(g0.clone(), cfg, shards).unwrap();
                let tag = format!("shards {shards} threads {threads}");
                let finals = assert_warm_equals_cold(warm, cold, &batches, &tag)?;
                match &reference {
                    None => reference = Some(finals),
                    Some(want) => prop_assert_eq!(&finals, want, "{}: drift", tag),
                }
            }
        }
    }

    /// Weighted twin: alias-table patching, weighted refresh deltas and
    /// warm absorption compose to the same bitwise guarantee.
    #[test]
    fn warm_maintenance_equals_cold_weighted(
        (g0, batches, l, r, seed) in churn_instance()
    ) {
        prop_assume!(!batches.is_empty());
        let w0 = weighted_twin(&g0, seed).expect("twin");
        let k = (g0.n() / 12).max(2);
        let mut reference: Option<Vec<NodeId>> = None;
        for shards in SHARDS {
            for threads in THREADS {
                let cfg = StreamConfig {
                    l, r, k, seed, rule: GainRule::Coverage, threads,
                };
                let warm = StreamEngine::with_shards_weighted(w0.clone(), cfg, shards).unwrap();
                let cold = StreamEngine::with_shards_weighted(w0.clone(), cfg, shards).unwrap();
                let tag = format!("weighted shards {shards} threads {threads}");
                let finals = assert_warm_equals_cold(warm, cold, &batches, &tag)?;
                match &reference {
                    None => reference = Some(finals),
                    Some(want) => prop_assert_eq!(&finals, want, "{}: drift", tag),
                }
            }
        }
    }
}
