//! The durability acceptance suite: **crash-exact recovery**.
//!
//! A durable engine journals every batch (fsync'd) before any shard
//! commits and snapshots at a configurable cadence. The contract proved
//! here: for a crash at *any* byte of the journal — every record
//! boundary, every mid-record truncation, a bit flip in the unsynced
//! tail — `DurableEngine::open` reconstructs an engine **bit-identical**
//! to the live engine that wrote the surviving record prefix: same seeds,
//! same gain trace, same objective, same per-shard maintained indexes,
//! same point-query answers. A bit flip *before* the tail is committed
//! history going unreadable, and recovery must refuse it by name
//! (`CorruptJournal`) rather than silently resurrect a wrong state.
//!
//! Why exactness holds: the engine state after any batch prefix is a pure
//! function of `(base graph, batches, config)`, the journal stores the
//! canonicalized batches verbatim, and replay runs the normal apply path
//! — so surviving-prefix replay *is* the surviving-prefix engine.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use proptest::Strategy as PropStrategy;
use rwd::core::greedy::approx::GainRule;
use rwd::datasets::temporal::trace_weight;
use rwd::graph::weighted::weighted_twin;
use rwd::prelude::*;
use rwd::stream::{DurabilityConfig, DurableEngine, OpenMode, StreamError};

const THREADS: [usize; 3] = [1, 2, 8];
const SHARDS: [usize; 3] = [1, 2, 4];

static UNIQ: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "rwd-recovery-eq-{tag}-{}-{}",
        std::process::id(),
        UNIQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A random churn instance (same shape as the shard_equivalence suite).
fn churn_instance() -> impl PropStrategy<Value = (CsrGraph, Vec<EdgeBatch>, u32, usize, u64)> {
    (20usize..=60)
        .prop_flat_map(|n| {
            let max_edges = (n * 2).min(n * (n - 1) / 2);
            (
                Just(n),
                proptest::collection::vec((0..n as u32, 0..n as u32), n / 2..=max_edges),
                proptest::collection::vec(
                    proptest::collection::vec((0u64..u64::MAX, 0..3u8), 1..=5),
                    1..=3,
                ),
                2u32..=6,   // l
                1usize..=5, // r — shard counts above r are skipped per case
                0u64..u64::MAX,
            )
        })
        .prop_map(|(n, edges, batch_picks, l, r, seed)| {
            let g = CsrGraph::from_edges(n, &edges).expect("valid edges");
            let batches = resolve_batches(&g, &batch_picks, seed);
            (g, batches, l, r, seed)
        })
}

/// Turns raw `(pick, kind)` draws into valid batches against the evolving
/// edge set: kind 0 deletes a live edge, other kinds insert an absent pair.
fn resolve_batches(g: &CsrGraph, batch_picks: &[Vec<(u64, u8)>], seed: u64) -> Vec<EdgeBatch> {
    let n = g.n() as u64;
    let mut live: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
    let mut member: std::collections::HashSet<(u32, u32)> = live.iter().copied().collect();
    let mut batches = Vec::new();
    for (t, picks) in batch_picks.iter().enumerate() {
        let mut batch = EdgeBatch::new(t as u64);
        let mut edited: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        for &(pick, kind) in picks {
            if kind == 0 {
                if live.is_empty() {
                    continue;
                }
                let mut i = (pick % live.len() as u64) as usize;
                let mut found = None;
                for _ in 0..live.len() {
                    if !edited.contains(&live[i]) {
                        found = Some(i);
                        break;
                    }
                    i = (i + 1) % live.len();
                }
                let Some(i) = found else { continue };
                let e = live.swap_remove(i);
                member.remove(&e);
                edited.insert(e);
                batch.deletions.push(e);
            } else {
                let mut x = pick;
                let mut found = None;
                for _ in 0..64 {
                    let a = (x % n) as u32;
                    let b = ((x / n) % n) as u32;
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if a == b {
                        continue;
                    }
                    let e = if a < b { (a, b) } else { (b, a) };
                    if member.contains(&e) || edited.contains(&e) {
                        continue;
                    }
                    found = Some(e);
                    break;
                }
                if let Some(e) = found {
                    member.insert(e);
                    live.push(e);
                    edited.insert(e);
                    batch
                        .insertions
                        .push((e.0, e.1, trace_weight(seed, e.0, e.1)));
                }
            }
        }
        if !batch.is_empty() {
            batches.push(batch);
        }
    }
    batches
}

/// Bit-level fingerprint of everything an engine answers: seeds, gain
/// trace, objective, and the full point-query surface of the snapshot.
type Fingerprint = (
    Vec<NodeId>,
    Vec<u64>,
    u64,
    Vec<u64>,
    u64,
    Vec<(NodeId, u64)>,
);

fn fingerprint(engine: &StreamEngine) -> Fingerprint {
    let snap = Snapshot::capture(engine);
    let n = snap.n();
    let mut points = Vec::with_capacity(2 * n);
    for v in 0..n as u32 {
        points.push(snap.hit_time(NodeId(v)).to_bits());
        points.push(snap.hit_prob(NodeId(v)).to_bits());
    }
    (
        engine.seeds().to_vec(),
        engine.gain_trace().iter().map(|x| x.to_bits()).collect(),
        engine.objective().to_bits(),
        points,
        snap.coverage().to_bits(),
        snap.top_m_uncovered(5)
            .into_iter()
            .map(|(v, x)| (v, x.to_bits()))
            .collect(),
    )
}

/// Recursive data-dir copy, so each kill point mutates its own clone.
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let e = entry.unwrap();
        let to = dst.join(e.file_name());
        if e.file_type().unwrap().is_dir() {
            copy_dir(&e.path(), &to);
        } else {
            std::fs::copy(e.path(), &to).unwrap();
        }
    }
}

/// The (single, cadence-0) journal file of a data dir.
fn journal_path(dir: &Path) -> PathBuf {
    let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            (name.starts_with("journal-") && name.ends_with(".wal")).then_some(p)
        })
        .collect();
    found.sort();
    found.pop().expect("data dir holds a journal")
}

/// Byte offsets of every record boundary in a journal (offset 0 of the
/// record stream is the 16-byte header; `boundaries[i]` = end of record
/// `i-1` = the file length at which exactly `i` records survive).
fn record_boundaries(path: &Path) -> Vec<usize> {
    let buf = std::fs::read(path).unwrap();
    let mut offs = vec![16usize];
    let mut pos = 16usize;
    while pos + 8 <= buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 8 + len > buf.len() {
            break;
        }
        pos += 8 + len;
        offs.push(pos);
    }
    assert_eq!(
        *offs.last().unwrap(),
        buf.len(),
        "journal ends on a boundary"
    );
    offs
}

/// Builds the reference engine for a batch prefix from scratch.
fn reference_after(
    g0: &CsrGraph,
    weighted: bool,
    cfg: StreamConfig,
    shards: usize,
    batches: &[EdgeBatch],
) -> StreamEngine {
    let mut eng = if weighted {
        let w0 = weighted_twin(g0, cfg.seed).expect("twin");
        StreamEngine::with_shards_weighted(w0, cfg, shards)
    } else {
        StreamEngine::with_shards(g0.clone(), cfg, shards)
    }
    .expect("valid config");
    for b in batches {
        eng.apply(b).expect("resolved batches are valid");
    }
    eng
}

/// Asserts a recovered engine is bitwise equal to the reference: the full
/// query fingerprint plus every per-shard maintained index.
fn assert_recovered_equals(recovered: &StreamEngine, reference: &StreamEngine, what: &str) {
    assert_eq!(
        fingerprint(recovered),
        fingerprint(reference),
        "{what}: recovered answers drifted from the surviving-prefix engine"
    );
    let ri = recovered.shard_indexes();
    let fi = reference.shard_indexes();
    assert_eq!(ri.len(), fi.len(), "{what}: shard count drifted");
    for (s, (a, b)) in ri.iter().zip(fi.iter()).enumerate() {
        assert!(
            **a == **b,
            "{what}: recovered shard {s} index != surviving-prefix index"
        );
    }
}

/// One absent pair of the engine's current graph, as a follow-up batch.
fn followup_batch(engine: &StreamEngine, weighted: bool, seed: u64, t: u64) -> Option<EdgeBatch> {
    let n = if weighted {
        engine.weighted_graph()?.n()
    } else {
        engine.graph()?.n()
    } as u32;
    let absent = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .find(|&(u, v)| {
            if weighted {
                !engine
                    .weighted_graph()
                    .expect("weighted engine")
                    .has_edge(NodeId(u), NodeId(v))
            } else {
                !engine
                    .graph()
                    .expect("unweighted engine")
                    .has_edge(NodeId(u), NodeId(v))
            }
        })?;
    let mut b = EdgeBatch::new(t);
    b.insertions
        .push((absent.0, absent.1, trace_weight(seed, absent.0, absent.1)));
    Some(b)
}

/// The kill-point sweep shared by the unweighted and weighted suites.
fn check_every_kill_point(
    g0: &CsrGraph,
    batches: &[EdgeBatch],
    weighted: bool,
    cfg: StreamConfig,
    shards: usize,
) {
    let dir = tmp_dir("trace");
    let engine = if weighted {
        let w0 = weighted_twin(g0, cfg.seed).expect("twin");
        StreamEngine::with_shards_weighted(w0, cfg, shards)
    } else {
        StreamEngine::with_shards(g0.clone(), cfg, shards)
    }
    .expect("valid config");
    // Cadence 0: the journal keeps every record, so each record boundary
    // is a distinct crash state over the same base snapshot.
    let mut durable =
        DurableEngine::create(engine, &dir, DurabilityConfig { snapshot_every: 0 }).unwrap();
    for b in batches {
        durable.apply(b).expect("resolved batches are valid");
    }
    let live = fingerprint(durable.engine());
    drop(durable);

    let journal = journal_path(&dir);
    let boundaries = record_boundaries(&journal);
    let records = boundaries.len() - 1;
    assert_eq!(records, batches.len(), "one journal record per batch");

    // Kill at every record boundary: exactly the first `i` batches
    // survive, and recovery reports a clean (un-torn) journal.
    for (i, &cut) in boundaries.iter().enumerate() {
        let killed = tmp_dir("cut");
        copy_dir(&dir, &killed);
        let jp = journal_path(&killed);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&jp)
            .unwrap()
            .set_len(cut as u64)
            .unwrap();
        let (rec, report) = DurableEngine::open(&killed, DurabilityConfig::default()).unwrap();
        assert!(
            report.torn_tail.is_none(),
            "boundary cut {cut} misread as torn: {:?}",
            report.torn_tail
        );
        assert_eq!(report.recovered_epoch, i as u64);
        let reference = reference_after(g0, weighted, cfg, shards, &batches[..i]);
        assert_recovered_equals(rec.engine(), &reference, &format!("boundary {i}"));
        drop(rec);
        std::fs::remove_dir_all(&killed).ok();
    }

    // Kill mid-record (a torn append): the partial record is truncated,
    // the prefix before it survives.
    for (i, w) in boundaries.windows(2).enumerate() {
        let cut = w[0] + (w[1] - w[0]) / 2;
        assert!(cut > w[0] && cut < w[1]);
        let killed = tmp_dir("torn");
        copy_dir(&dir, &killed);
        let jp = journal_path(&killed);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&jp)
            .unwrap()
            .set_len(cut as u64)
            .unwrap();
        let (rec, report) = DurableEngine::open(&killed, DurabilityConfig::default()).unwrap();
        assert!(report.torn_tail.is_some(), "mid-record cut {cut} not torn");
        assert_eq!(report.recovered_epoch, i as u64);
        let reference = reference_after(g0, weighted, cfg, shards, &batches[..i]);
        assert_recovered_equals(rec.engine(), &reference, &format!("torn record {i}"));

        // Recovery is not a dead end: the reopened journal accepts the
        // next batch and stays bit-exact with the reference.
        let mut rec = rec;
        let mut reference = reference;
        if let Some(extra) = followup_batch(&reference, weighted, cfg.seed, 1_000 + i as u64) {
            rec.apply(&extra).expect("follow-up batch applies");
            reference.apply(&extra).expect("follow-up batch applies");
            assert_recovered_equals(
                rec.engine(),
                &reference,
                &format!("post-recovery batch after torn record {i}"),
            );
        }
        drop(rec);
        std::fs::remove_dir_all(&killed).ok();
    }

    // A bit flip in the final record is an unsynced-tail corruption: the
    // record is discarded (torn) and the prefix survives.
    {
        let killed = tmp_dir("flip-tail");
        copy_dir(&dir, &killed);
        let jp = journal_path(&killed);
        let mut buf = std::fs::read(&jp).unwrap();
        let off = boundaries[records - 1] + 9; // a payload byte of the last record
        buf[off] ^= 0x10;
        std::fs::write(&jp, &buf).unwrap();
        let (rec, report) = DurableEngine::open(&killed, DurabilityConfig::default()).unwrap();
        assert!(
            report.torn_tail.is_some(),
            "tail bit flip not classified torn"
        );
        assert_eq!(report.recovered_epoch, (records - 1) as u64);
        let reference = reference_after(g0, weighted, cfg, shards, &batches[..records - 1]);
        assert_recovered_equals(rec.engine(), &reference, "tail bit flip");
        drop(rec);
        std::fs::remove_dir_all(&killed).ok();
    }

    // A bit flip *before* the tail is unreadable committed history:
    // recovery must refuse by name, never reconstruct a wrong state.
    if records >= 2 {
        let killed = tmp_dir("flip-mid");
        copy_dir(&dir, &killed);
        let jp = journal_path(&killed);
        let mut buf = std::fs::read(&jp).unwrap();
        let off = boundaries[0] + 9; // a payload byte of the first record
        buf[off] ^= 0x10;
        std::fs::write(&jp, &buf).unwrap();
        match DurableEngine::open(&killed, DurabilityConfig::default()) {
            Err(StreamError::CorruptJournal(msg)) => {
                assert!(msg.contains("not a torn append"), "{msg}")
            }
            other => panic!("mid-journal bit flip must be CorruptJournal, got {other:?}"),
        }
        std::fs::remove_dir_all(&killed).ok();
    }

    // Untouched dir: full recovery equals the live engine it shadows —
    // through BOTH open paths. The zero-copy mapped open and the streaming
    // deserialize open must reconstruct the same bits before replaying the
    // same journal suffix.
    for mode in [OpenMode::Mapped, OpenMode::Deserialize] {
        let (rec, report) =
            DurableEngine::open_with(&dir, DurabilityConfig::default(), mode).unwrap();
        assert!(report.torn_tail.is_none());
        assert_eq!(
            fingerprint(rec.engine()),
            live,
            "full recovery ({mode:?} open) != live engine"
        );
        drop(rec);
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unweighted: crash-exact recovery at every kill point.
    #[test]
    fn recovery_is_crash_exact_unweighted(
        (g0, batches, l, r, seed) in churn_instance(),
        shard_pick in 0usize..3,
        thread_pick in 0usize..3,
    ) {
        prop_assume!(!batches.is_empty());
        let shards = SHARDS[shard_pick].min(r);
        let k = (g0.n() / 10).max(1);
        let cfg = StreamConfig {
            l, r, k, seed, rule: GainRule::HittingTime, threads: THREADS[thread_pick],
        };
        check_every_kill_point(&g0, &batches, false, cfg, shards);
    }

    /// Weighted twin: alias-table-driven walks recover bit-exactly too.
    #[test]
    fn recovery_is_crash_exact_weighted(
        (g0, batches, l, r, seed) in churn_instance(),
        shard_pick in 0usize..3,
        thread_pick in 0usize..3,
    ) {
        prop_assume!(!batches.is_empty());
        let shards = SHARDS[shard_pick].min(r);
        let k = (g0.n() / 10).max(1);
        let cfg = StreamConfig {
            l, r, k, seed, rule: GainRule::Coverage, threads: THREADS[thread_pick],
        };
        check_every_kill_point(&g0, &batches, true, cfg, shards);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full shard × thread grid, with snapshot cadence + compaction in
    /// play: recovery from the latest snapshot + journal suffix equals the
    /// live engine at shards {1,2,4} × threads {1,2,8}.
    #[test]
    fn recovery_grid_with_snapshot_cadence(
        (g0, batches, l, r, seed) in churn_instance(),
        cadence in 1u64..=2,
    ) {
        prop_assume!(!batches.is_empty());
        let k = (g0.n() / 10).max(1);
        for shards in SHARDS.into_iter().filter(|&s| s <= r) {
            for threads in THREADS {
                let cfg = StreamConfig {
                    l, r, k, seed, rule: GainRule::HittingTime, threads,
                };
                let dir = tmp_dir("grid");
                let engine = StreamEngine::with_shards(g0.clone(), cfg, shards).unwrap();
                let mut durable = DurableEngine::create(
                    engine,
                    &dir,
                    DurabilityConfig { snapshot_every: cadence },
                )
                .unwrap();
                for b in &batches {
                    durable.apply(b).expect("resolved batches are valid");
                }
                let live = fingerprint(durable.engine());
                drop(durable);

                let (rec, report) =
                    DurableEngine::open(&dir, DurabilityConfig { snapshot_every: cadence })
                        .unwrap();
                prop_assert!(report.torn_tail.is_none());
                prop_assert_eq!(
                    fingerprint(rec.engine()), live,
                    "shards {} threads {} cadence {}: recovery != live engine",
                    shards, threads, cadence
                );
                // Cadence landed at least one mid-trace snapshot, so the
                // replay suffix must be shorter than the whole trace.
                prop_assert!(
                    report.snapshot_epoch >= (batches.len() as u64).saturating_sub(cadence),
                    "snapshot cadence {} did not advance the base epoch (got {})",
                    cadence, report.snapshot_epoch
                );
                drop(rec);
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
}
