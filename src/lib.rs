//! # rwd — Random-Walk Domination in large graphs
//!
//! A complete Rust implementation of
//! *"Random-walk domination in large graphs: problem definitions and fast
//! solutions"* (Li, Yu, Huang, Cheng — ICDE 2014, arXiv:1302.4546), built
//! from scratch: graph substrate, walk machinery, exact and approximate
//! greedy solvers, baselines, metrics, datasets and a full experiment
//! harness.
//!
//! This façade crate re-exports the workspace members:
//!
//! * [`graph`] — CSR graphs, builders, generators, I/O ([`rwd_graph`])
//! * [`walks`] — walk engine, exact DP hitting times, estimators, walk
//!   index ([`rwd_walks`])
//! * [`core`] — problems, objectives, greedy solvers, baselines, metrics
//!   ([`rwd_core`])
//! * [`stream`] — the evolving-graph subsystem: edge churn, incremental
//!   walk-index maintenance, seed repair ([`rwd_stream`])
//! * [`serve`] — the serving path: snapshot-consistent epochs and an
//!   online point-query API over the evolving engine ([`rwd_serve`])
//! * [`datasets`] — SNAP stand-ins, the scalability series and temporal
//!   edge traces ([`rwd_datasets`])
//!
//! ## Example
//!
//! ```
//! use rwd::prelude::*;
//!
//! // A small power-law social network.
//! let g = rwd::graph::generators::barabasi_albert(500, 4, 42).unwrap();
//!
//! // Place k = 8 items so as many users as possible discover one while
//! // social-browsing at most L = 6 hops (Problem 2, approximate greedy).
//! let params = Params { k: 8, l: 6, r: 100, seed: 1, ..Params::default() };
//! let sel = ApproxGreedy::new(Problem::MaxCoverage, params).run(&g).unwrap();
//!
//! // Grade the placement with the paper's metrics: 8 well-placed items
//! // should dominate a large fraction of the 500 users in expectation.
//! let m = rwd::core::metrics::evaluate_exact(&g, &sel.nodes, 6);
//! assert!(m.ehn > 200.0, "greedy should dominate much of the graph");
//! ```

pub use rwd_core as core;
pub use rwd_datasets as datasets;
pub use rwd_graph as graph;
pub use rwd_serve as serve;
pub use rwd_stream as stream;
pub use rwd_walks as walks;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use rwd_core::algo::{ApproxGreedy, DpGreedy, SamplingGreedy};
    pub use rwd_core::baselines;
    pub use rwd_core::coverage::{min_nodes_for_coverage, CoverageParams};
    pub use rwd_core::greedy::Strategy;
    pub use rwd_core::metrics::{self, MetricParams};
    pub use rwd_core::problem::{Params, Problem, Selection};
    pub use rwd_graph::{CsrGraph, GraphBuilder, NodeId};
    pub use rwd_serve::{Query, ServeEngine, Server, Snapshot};
    pub use rwd_stream::{EdgeBatch, StreamConfig, StreamEngine};
    pub use rwd_walks::{NodeSet, WalkIndex};
}
