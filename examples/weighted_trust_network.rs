//! Weighted-graph extension: item placement on a *trust-weighted* network.
//!
//! The paper notes its techniques "can also be easily extended to directed
//! and weighted graphs" — the only change is the transition probability
//! `p_uw = w(u,w)/strength(u)`. In an Epinions-style trust network, users
//! follow strong-trust edges more often than weak ones, so the right
//! placement depends on the *weights*, not just the topology.
//!
//! This example builds one topology with two weightings (uniform vs
//! trust-skewed), solves Problem 2 on both with the weighted approximate
//! greedy, and shows that (a) the selections differ and (b) each selection
//! wins under the weighting it was optimized for.
//!
//! Run with:
//! ```sh
//! cargo run --release --example weighted_trust_network
//! ```

use rwd::core::algo::approx_greedy_weighted;
use rwd::core::metrics;
use rwd::core::report::{fmt_f, Table};
use rwd::graph::weighted::WeightedCsrGraph;
use rwd::prelude::*;
use rwd::walks::rng::WalkRng;

fn main() {
    // A power-law topology: who *can* see whom.
    let topology = rwd::graph::generators::barabasi_albert(1_500, 4, 17).expect("topology");

    // Uniform trust: every tie browsed equally often.
    let uniform: Vec<(u32, u32, f64)> = topology
        .edges()
        .map(|(u, v)| (u.raw(), v.raw(), 1.0))
        .collect();

    // Skewed trust: a random 10% of ties are 20x-strong "close friends";
    // they attract almost all browsing traffic.
    let mut rng = WalkRng::from_seed(99);
    let skewed: Vec<(u32, u32, f64)> = topology
        .edges()
        .map(|(u, v)| {
            let w = if rng.gen_bool(0.1) { 20.0 } else { 1.0 };
            (u.raw(), v.raw(), w)
        })
        .collect();

    let g_uniform = WeightedCsrGraph::from_weighted_edges(topology.n(), &uniform).unwrap();
    let g_skewed = WeightedCsrGraph::from_weighted_edges(topology.n(), &skewed).unwrap();
    println!(
        "trust network: n = {}, m = {}, 10% of ties carry 20x trust\n",
        topology.n(),
        topology.m()
    );

    let params = Params {
        k: 15,
        l: 5,
        r: 150,
        seed: 4,
        ..Params::default()
    };
    let sel_uniform =
        approx_greedy_weighted(&g_uniform, Problem::MaxCoverage, params).expect("uniform");
    let sel_skewed =
        approx_greedy_weighted(&g_skewed, Problem::MaxCoverage, params).expect("skewed");

    let overlap = sel_uniform
        .nodes
        .iter()
        .filter(|u| sel_skewed.nodes.contains(u))
        .count();
    println!(
        "placements overlap on {overlap}/{} nodes — trust weights move {} seeds\n",
        params.k,
        params.k - overlap
    );

    // Cross-evaluate each placement under each weighting (exact weighted DP).
    let mut t = Table::new([
        "placement \\ world",
        "uniform trust (EHN)",
        "skewed trust (EHN)",
    ]);
    for (name, sel) in [
        ("optimized for uniform", &sel_uniform),
        ("optimized for skewed", &sel_skewed),
    ] {
        let on_uniform = metrics::evaluate_exact_weighted(&g_uniform, &sel.nodes, 5);
        let on_skewed = metrics::evaluate_exact_weighted(&g_skewed, &sel.nodes, 5);
        t.row([
            name.to_string(),
            fmt_f(on_uniform.ehn, 1),
            fmt_f(on_skewed.ehn, 1),
        ]);
    }
    println!("{}", t.render());
    println!("Each placement wins (or ties) in the world it was optimized");
    println!("for — ignoring trust weights leaves reach on the table.");
}
