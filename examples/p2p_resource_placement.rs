//! Resource placement in a P2P overlay (the paper's §1.1 third scenario)
//! using the partial-cover extension (§5, future direction 3).
//!
//! In unstructured P2P networks, searches are random walks with a TTL
//! (time-to-live) of `L` hops. The operator wants the *minimum* number of
//! replica-holding peers such that at least a fraction `α` of peers find a
//! replica within the TTL — the partial-cover problem implemented in
//! `rwd_core::coverage`.
//!
//! Run with:
//! ```sh
//! cargo run --release --example p2p_resource_placement
//! ```

use rwd::core::report::{fmt_f, Table};
use rwd::prelude::*;

fn main() {
    // Two classic P2P overlay topologies at the same size: a random
    // 6-regular overlay (Gnutella-style) and a small-world overlay.
    let regular = rwd::graph::generators::random_regular(2_000, 6, 5).expect("regular overlay");
    let small_world =
        rwd::graph::generators::watts_strogatz(2_000, 6, 0.2, 5).expect("small-world overlay");

    for (name, g) in [
        ("random 6-regular", &regular),
        ("small-world (β=0.2)", &small_world),
    ] {
        println!("== {name}: n = {}, m = {} ==\n", g.n(), g.m());

        let mut table = Table::new(["TTL (L)", "α target", "replicas needed", "E[peers served]"]);
        for l in [4u32, 8] {
            for alpha in [0.5, 0.8, 0.95] {
                let res = min_nodes_for_coverage(
                    g,
                    CoverageParams {
                        alpha,
                        l,
                        r: 64,
                        seed: 77,
                        ..Default::default()
                    },
                )
                .expect("partial cover");
                assert!(res.reached, "coverage target must be reachable");
                table.row([
                    l.to_string(),
                    format!("{:.0}%", alpha * 100.0),
                    res.k().to_string(),
                    fmt_f(res.achieved(), 1),
                ]);
            }
        }
        println!("{}", table.render());
    }

    println!("Longer TTLs let each replica serve walkers from farther away,");
    println!("so the replica budget shrinks substantially as L grows (about");
    println!("1.5x fewer replicas when doubling the TTL at every α above).");
}
