//! Quickstart: solve both random-walk domination problems on a small
//! power-law graph and compare every algorithm with the paper's metrics.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rwd::core::report::{fmt_f, fmt_secs, Table};
use rwd::prelude::*;

fn main() {
    // The paper's synthetic setup (§4.1): a power-law graph with 1,000
    // nodes and ≈10k edges, L-length walks with L = 5, k = 30 targets.
    let g = rwd::graph::generators::barabasi_albert(1_000, 10, 42).expect("generator");
    println!("graph: n = {}, m = {}\n", g.n(), g.m());

    let params = Params {
        k: 30,
        l: 5,
        r: 100,
        seed: 7,
        ..Params::default()
    };
    let metric_params = MetricParams {
        l: 5,
        r: 500,
        seed: 999,
    };

    let mut table = Table::new(["algorithm", "AHT (↓)", "EHN (↑)", "seconds"]);

    for problem in [Problem::MinHittingTime, Problem::MaxCoverage] {
        // The exact (DP) greedy — feasible because the graph is small.
        let dp = DpGreedy::new(problem, params).run(&g).expect("dp greedy");
        let m = metrics::evaluate(&g, &dp.nodes, metric_params);
        table.row([
            dp.algorithm.clone(),
            fmt_f(m.aht, 3),
            fmt_f(m.ehn, 1),
            fmt_secs(dp.elapsed),
        ]);

        // The linear-time approximate greedy (Algorithm 6).
        let ap = ApproxGreedy::new(problem, params)
            .run(&g)
            .expect("approx greedy");
        let m = metrics::evaluate(&g, &ap.nodes, metric_params);
        table.row([
            ap.algorithm.clone(),
            fmt_f(m.aht, 3),
            fmt_f(m.ehn, 1),
            fmt_secs(ap.elapsed),
        ]);
    }

    // The paper's baselines.
    for sel in [
        baselines::degree_top_k(&g, params.k).expect("degree"),
        baselines::dominate_greedy(&g, params.k).expect("dominate"),
        baselines::random_k(&g, params.k, 3).expect("random"),
        baselines::pagerank_top_k(&g, params.k).expect("pagerank"),
    ] {
        let m = metrics::evaluate(&g, &sel.nodes, metric_params);
        table.row([
            sel.algorithm.clone(),
            fmt_f(m.aht, 3),
            fmt_f(m.ehn, 1),
            fmt_secs(sel.elapsed),
        ]);
    }

    println!("{}", table.render());
    println!("AHT = average hitting time (lower is better; paper metric M1)");
    println!("EHN = expected number of hitting nodes (higher is better; M2)");
}
