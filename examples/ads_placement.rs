//! Ads placement with the combined objective (the paper's §5, future
//! direction 1).
//!
//! An advertiser cares about two things at once: *reach* (how many users
//! find the ad — Problem 2) and *latency* (how quickly they find it —
//! Problem 1). The paper notes that any positive combination of the two
//! submodular objectives stays submodular; the combined gain rule
//! `λ·gainF1/(nL) + (1−λ)·gainF2/n` runs inside the same Algorithm 6 sweep.
//!
//! The example shows both regimes:
//!
//! * on a **heavy-tailed** ad network the two objectives agree almost
//!   perfectly (the paper's Figs. 6–7 show the same near-coincidence of
//!   ApproxF1 and ApproxF2) — λ barely matters, hubs win both games;
//! * on a **flat, community-style** network (uniform degrees) reach and
//!   latency favor different placements, and λ becomes a real knob.
//!
//! Run with:
//! ```sh
//! cargo run --release --example ads_placement
//! ```

use rwd::core::algo::approx_combined;
use rwd::core::report::{fmt_f, Table};
use rwd::prelude::*;

fn sweep(g: &CsrGraph, params: Params, metric_params: MetricParams) {
    let baseline = approx_combined(g, 0.0, params).expect("pure coverage");
    let base_set: std::collections::HashSet<NodeId> = baseline.nodes.iter().copied().collect();

    let mut table = Table::new(["λ (toward latency)", "AHT (↓)", "EHN (↑)", "overlap w/ λ=0"]);
    for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let sel = approx_combined(g, lambda, params).expect("combined greedy");
        let m = metrics::evaluate(g, &sel.nodes, metric_params);
        let overlap = sel.nodes.iter().filter(|u| base_set.contains(u)).count();
        table.row([
            format!("{lambda:.2}"),
            fmt_f(m.aht, 3),
            fmt_f(m.ehn, 1),
            format!("{overlap}/{}", params.k),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let params = Params {
        k: 25,
        l: 4,
        r: 100,
        seed: 21,
        ..Params::default()
    };
    let metric_params = MetricParams {
        l: 4,
        r: 500,
        seed: 31337,
    };

    // Regime 1: heavy-tailed ad network (Epinions-like stand-in).
    let heavy = rwd::datasets::Dataset::Epinions
        .synthetic_connected(0.03)
        .expect("dataset");
    println!(
        "== heavy-tailed ad network: n = {}, m = {} ==\n",
        heavy.n(),
        heavy.m()
    );
    sweep(&heavy, params, metric_params);
    println!("Hubs dominate both objectives on power-law networks, so every");
    println!("λ lands on (nearly) the same placement — consistent with the");
    println!("paper's Figs. 6–7 where the ApproxF1/ApproxF2 curves almost");
    println!("coincide on the SNAP graphs.\n");

    // Regime 2: flat community network (uniform-degree small world) with
    // short attention spans — reach and latency now disagree.
    let flat = rwd::graph::generators::watts_strogatz(2_000, 6, 0.1, 5).expect("small world");
    let params = Params {
        k: 25,
        l: 2,
        r: 100,
        seed: 21,
        ..Params::default()
    };
    let metric_params = MetricParams {
        l: 2,
        r: 500,
        seed: 31337,
    };
    println!(
        "== flat community network: n = {}, m = {} (L = 2) ==\n",
        flat.n(),
        flat.m()
    );
    sweep(&flat, params, metric_params);
    println!("With no hubs, λ genuinely moves the placement (overlap with");
    println!("the pure-reach set falls to ~60%) while both metrics stay on a");
    println!("near-optimal plateau: the 1−1/e guarantee holds for every");
    println!("blend, so the advertiser can tune λ without risking either");
    println!("metric — the knob an ad buyer actually wants.");
}
