//! Item placement in an online social network (the paper's §1.1 motivating
//! scenario).
//!
//! A developer wants to seed a Facebook-style application on `k` users so
//! that other users discover it while *social browsing* — a random walk over
//! friendship ties with an attention budget of `L` hops. Problem 2 (maximize
//! the expected number of users who find the item) is the natural objective;
//! this example also shows how the same placement scores under Problem 1's
//! metric (how *quickly* users find it).
//!
//! Run with:
//! ```sh
//! cargo run --release --example item_placement
//! ```

use rwd::core::report::{fmt_f, Table};
use rwd::prelude::*;

fn main() {
    // A social-network stand-in at 10% of the CAGrQc co-authorship scale.
    let g = rwd::datasets::Dataset::CaGrQc
        .synthetic_connected(0.10)
        .expect("dataset");
    println!(
        "social network: n = {} users, m = {} friendships\n",
        g.n(),
        g.m()
    );

    let l = 6; // users browse at most 6 profiles per session
    let metric_params = MetricParams {
        l,
        r: 500,
        seed: 4242,
    };

    println!("How many seeded users does it take to reach the network?\n");
    let mut table = Table::new([
        "k seeds",
        "users reached (EHN)",
        "% of network",
        "avg discovery hops (AHT)",
    ]);

    let idx = WalkIndex::build(&g, l, 100, 11);
    for k in [1usize, 2, 5, 10, 20, 40] {
        let params = Params {
            k,
            l,
            r: 100,
            seed: 11,
            ..Params::default()
        };
        let sel = ApproxGreedy::new(Problem::MaxCoverage, params)
            .run_with_index(&idx)
            .expect("approx greedy");
        let m = metrics::evaluate(&g, &sel.nodes, metric_params);
        table.row([
            k.to_string(),
            fmt_f(m.ehn, 1),
            format!("{:.1}%", 100.0 * m.ehn / g.n() as f64),
            fmt_f(m.aht, 2),
        ]);
    }
    println!("{}", table.render());

    // Compare the k = 20 greedy placement against naive strategies.
    let k = 20;
    let params = Params {
        k,
        l,
        r: 100,
        seed: 11,
        ..Params::default()
    };
    let greedy = ApproxGreedy::new(Problem::MaxCoverage, params)
        .run_with_index(&idx)
        .expect("approx greedy");
    let degree = baselines::degree_top_k(&g, k).expect("degree");
    let random = baselines::random_k(&g, k, 99).expect("random");

    println!("\nplacement quality at k = {k}:\n");
    let mut table = Table::new(["strategy", "users reached", "avg hops"]);
    for sel in [&greedy, &degree, &random] {
        let m = metrics::evaluate(&g, &sel.nodes, metric_params);
        table.row([sel.algorithm.clone(), fmt_f(m.ehn, 1), fmt_f(m.aht, 2)]);
    }
    println!("{}", table.render());

    let gm = metrics::evaluate(&g, &greedy.nodes, metric_params);
    let rm = metrics::evaluate(&g, &random.nodes, metric_params);
    println!(
        "greedy placement reaches {:.1}x more users than random seeding",
        gm.ehn / rm.ehn
    );
}
